module Database = Im_catalog.Database
module Index = Im_catalog.Index
module Metrics = Im_obs.Metrics

let m_commands = Metrics.counter "server_commands_total"
let m_live = Metrics.gauge "server_connections_live"
let m_tenants = Metrics.gauge "server_tenants"
let m_bytes_in = Metrics.counter "server_bytes_in_total"
let m_bytes_out = Metrics.counter "server_bytes_out_total"
let m_reaped = Metrics.counter "server_connections_reaped_total"
let m_rejected = Metrics.counter "server_connections_rejected_total"
let m_write_errors = Metrics.counter "server_write_errors_total"
let m_backpressure = Metrics.counter "server_backpressure_closed_total"
let m_overlong = Metrics.counter "server_overlong_lines_total"

(* High-water mark of any connection's queued output, and the largest
   number of connections accepted in a single select round (1 forever
   means the accept loop is serializing bursts again). *)
let m_out_high_water = Metrics.gauge "server_out_queue_max_bytes"
let m_accept_burst = Metrics.gauge "server_accept_burst_max"

(* Per-verb latency histograms; unknown verbs share one "other" series
   so a hostile client cannot grow the label set. *)
let m_command_seconds =
  List.map
    (fun verb ->
      ( verb,
        Metrics.histogram ~labels:[ ("verb", verb) ] "server_command_seconds"
      ))
    [ "stmt"; "stats"; "config"; "epoch"; "metrics"; "tenant"; "quit";
      "shutdown"; "other" ]

let command_histogram line =
  let verb =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let verb = String.lowercase_ascii verb in
  let verb = if List.mem_assoc verb m_command_seconds then verb else "other" in
  List.assoc verb m_command_seconds

(* ---- Tenants ---- *)

(* One tenant session: a [Service.t] (own window, drift detector,
   costsvc/derive cache, epoch history) plus per-tenant instruments.
   Tenant names bound metric labels, so they are restricted to a safe
   charset. *)
type session = {
  s_name : string;
  s_service : Service.t;
  mutable s_conns : int;  (* connections currently bound here *)
  s_live : Metrics.Gauge.t;  (* server_tenant_connections_live{tenant} *)
  s_commands : Metrics.Counter.t;  (* server_tenant_commands_total{tenant} *)
  s_epochs : Metrics.Counter.t;  (* server_tenant_epochs_total{tenant} *)
}

let valid_tenant_name name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       name

let make_session name service =
  {
    s_name = name;
    s_service = service;
    s_conns = 0;
    s_live =
      Metrics.gauge ~labels:[ ("tenant", name) ]
        "server_tenant_connections_live";
    s_commands =
      Metrics.counter ~labels:[ ("tenant", name) ]
        "server_tenant_commands_total";
    s_epochs =
      Metrics.counter ~labels:[ ("tenant", name) ] "server_tenant_epochs_total";
  }

(* ---- Connections ---- *)

(* Output is a byte-capped queue of reply chunks with a head offset, so
   a partial write never re-copies the rest of the queue (the old
   [String.sub] tail made a slow reader O(bytes^2)). *)
type outq = {
  oq : string Queue.t;
  mutable oq_head : int;  (* bytes of [Queue.peek oq] already written *)
  mutable oq_bytes : int;  (* total unsent bytes *)
}

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* incomplete trailing line *)
  pending : string Queue.t;  (* complete lines awaiting dispatch *)
  out : outq;
  mutable session : session option;  (* None after TENANT DROP *)
  mutable last_active : float;  (* monotonic seconds, Stopwatch.now_s *)
  mutable closing : bool;  (* discard input; close once output drains *)
  mutable eof : bool;  (* peer half-closed; drain pending + output *)
  mutable closed : bool;  (* fd is gone; every path rechecks this *)
}

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  read_timeout : float;
  max_connections : int;
  max_tenant_connections : int;
  max_output_bytes : int;
  factory : string -> (Service.t, string) result;
  sessions : (string, session) Hashtbl.t;
  default_tenant : string;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable running : bool;
  mutable connections_served : int;
  mutable commands_served : int;
  mutable out_high_water : int;
}

(* Commands dispatched per connection per select round. Bounds how long
   one pipelining client can monopolize the loop before accepts and
   other connections get a turn; rounds with leftover pending work
   re-select with a zero timeout. *)
let commands_per_round = 128

(* Input backpressure: a connection with this many parsed-but-undispatched
   lines stops being read until the dispatcher catches up. *)
let max_pending_lines = 1024

(* A single line longer than this is abuse, not SQL. *)
let max_line_bytes = 1_000_000

let no_factory _ = Error "tenant creation is not configured"

let create ?(host = "127.0.0.1") ?(port = 0) ?(read_timeout = 30.)
    ?(max_connections = 64) ?max_tenant_connections
    ?(max_output_bytes = 1_048_576) ?(tenant = "default") ?(tenants = [])
    ?(factory = no_factory) service =
  if not (valid_tenant_name tenant) then
    invalid_arg ("Server.create: invalid tenant name " ^ tenant);
  List.iter
    (fun (name, _) ->
      if not (valid_tenant_name name) then
        invalid_arg ("Server.create: invalid tenant name " ^ name);
      if name = tenant then
        invalid_arg ("Server.create: duplicate tenant " ^ name))
    tenants;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (* Accepted sockets inherit the listener's buffer sizes; shrinking
     the send buffer (tests, or ops pinning memory per connection)
     makes slow readers surface as queued output instead of hiding in
     kernel buffers. *)
  (match Sys.getenv_opt "IM_SERVE_SNDBUF" with
   | Some s ->
     (match int_of_string_opt s with
      | Some n when n > 0 -> Unix.setsockopt_int listener Unix.SO_SNDBUF n
      | Some _ | None -> ())
   | None -> ());
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listener 512;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let sessions = Hashtbl.create 8 in
  Hashtbl.replace sessions tenant (make_session tenant service);
  List.iter
    (fun (name, svc) ->
      if Hashtbl.mem sessions name then
        invalid_arg ("Server.create: duplicate tenant " ^ name);
      Hashtbl.replace sessions name (make_session name svc))
    tenants;
  Metrics.Gauge.set_int m_tenants (Hashtbl.length sessions);
  {
    listener;
    bound_port;
    read_timeout;
    max_connections;
    max_tenant_connections =
      (match max_tenant_connections with
       | Some n when n > 0 -> n
       | Some _ | None -> max_connections);
    max_output_bytes = max 1 max_output_bytes;
    factory;
    sessions;
    default_tenant = tenant;
    conns = Hashtbl.create 64;
    running = false;
    connections_served = 0;
    commands_served = 0;
    out_high_water = 0;
  }

let port t = t.bound_port
let shutdown t = t.running <- false
let connections_served t = t.connections_served
let commands_served t = t.commands_served
let tenants t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.sessions [])

(* ---- Protocol rendering ---- *)

let stats_line service =
  Service.stats service
  |> List.map (fun (k, v) ->
         let k =
           String.map (fun c -> if c = ' ' then '_' else c)
             (match String.index_opt k '(' with
              | Some i -> String.trim (String.sub k 0 i)
              | None -> k)
         in
         let v = String.map (fun c -> if c = ' ' then '_' else c) v in
         k ^ "=" ^ v)
  |> String.concat " "

let epoch_line (o : Epoch.outcome) =
  Printf.sprintf
    "epoch trigger=%s diff=%s pages=%d->%d cost=%.1f->%.1f benefit=%.3f \
     clusters=%d/%d opt_calls=%d"
    (Epoch.trigger_to_string o.Epoch.e_trigger)
    (Epoch.diff_to_string o.Epoch.e_diff)
    o.Epoch.e_old_pages o.Epoch.e_new_pages o.Epoch.e_old_cost
    o.Epoch.e_new_cost o.Epoch.e_benefit o.Epoch.e_clusters_tuned
    o.Epoch.e_budget_clusters o.Epoch.e_opt_calls

(* The reply to one observed-statement event. [Some epoch] outranks
   [Some drift]: an epoch that fired carries the drift information. *)
let stmt_reply session = function
  | Service.Rejected msg -> "ERR " ^ msg
  | Service.Observed { ev_epoch = Some o; _ } ->
    Metrics.Counter.incr session.s_epochs;
    "OK observed " ^ epoch_line o
  | Service.Observed { ev_drift = Some v; _ } ->
    Printf.sprintf "OK observed drift=%.3f regression=%.3f fired=%b"
      v.Drift.v_divergence v.Drift.v_regression v.Drift.v_fired
  | Service.Observed _ -> "OK observed"

(* ---- Connection lifecycle ---- *)

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns conn.fd;
    (match conn.session with
     | Some s ->
       s.s_conns <- s.s_conns - 1;
       Metrics.Gauge.set_int s.s_live s.s_conns
     | None -> ());
    conn.session <- None;
    Metrics.Gauge.set_int m_live (Hashtbl.length t.conns)
  end

(* Write as much queued output as the socket accepts. A peer that
   disconnected mid-reply surfaces here as EPIPE/ECONNRESET (EBADF or
   ENOTCONN if the fd was already torn down): that peer's failure must
   not unwind the serve loop — count it and drop only this
   connection. *)
let flush_out t conn =
  let continue = ref (not conn.closed) in
  while !continue && not (Queue.is_empty conn.out.oq) do
    let head = Queue.peek conn.out.oq in
    let off = conn.out.oq_head in
    let len = String.length head - off in
    match Unix.write_substring conn.fd head off len with
    | n ->
      Metrics.Counter.add m_bytes_out n;
      conn.out.oq_bytes <- conn.out.oq_bytes - n;
      if n = len then begin
        ignore (Queue.pop conn.out.oq);
        conn.out.oq_head <- 0
      end
      else begin
        conn.out.oq_head <- off + n;
        continue := false  (* kernel buffer full: wait for writable *)
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception
        Unix.Unix_error
          ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
      ->
      Metrics.Counter.incr m_write_errors;
      Queue.clear conn.out.oq;
      conn.out.oq_head <- 0;
      conn.out.oq_bytes <- 0;
      close_conn t conn;
      continue := false
  done

(* A closing connection goes once its output drains; a half-closed one
   additionally waits for its already-received commands to be answered
   (the half-close reply-loss fix: the peer's FIN promises no more
   input, not disinterest in the replies it pipelined). *)
let maybe_close_drained t conn =
  if
    (not conn.closed)
    && (conn.closing || conn.eof)
    && Queue.is_empty conn.pending
    && conn.out.oq_bytes = 0
  then close_conn t conn

(* Queue one reply line. Exceeding the output cap is backpressure: the
   reader is not keeping up, so the overflowing reply is dropped, the
   connection is marked closing (it drains what was already queued,
   then closes) and the event is counted. *)
let respond t conn reply =
  if not conn.closed then begin
    let chunk = reply ^ "\n" in
    if conn.out.oq_bytes + String.length chunk > t.max_output_bytes then begin
      (* Count the close once, not once per reply dropped after it. *)
      if not conn.closing then Metrics.Counter.incr m_backpressure;
      Queue.clear conn.pending;
      conn.closing <- true
    end
    else begin
      Queue.push chunk conn.out.oq;
      conn.out.oq_bytes <- conn.out.oq_bytes + String.length chunk;
      if conn.out.oq_bytes > t.out_high_water then begin
        t.out_high_water <- conn.out.oq_bytes;
        Metrics.Gauge.set_int m_out_high_water t.out_high_water
      end
    end
  end

(* ---- Command dispatch ---- *)

let split_verb line =
  match String.index_opt line ' ' with
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  | None -> (line, "")

let no_tenant_reply = "ERR no tenant bound (TENANT USE <name>)"

let tenant_list_lines t =
  let rows =
    List.map
      (fun name ->
        let s = Hashtbl.find t.sessions name in
        Printf.sprintf "%s conns=%d statements=%d epochs=%d" name s.s_conns
          (Service.statements s.s_service)
          (List.length (Service.epochs s.s_service)))
      (tenants t)
  in
  String.concat "\n"
    (Printf.sprintf "OK %d" (List.length rows) :: rows)

let bind_session t conn target =
  match conn.session with
  | Some s when s == target -> Ok ()
  | prev ->
    if
      target.s_conns >= t.max_tenant_connections
    then Error (Printf.sprintf "tenant %s is full" target.s_name)
    else begin
      (match prev with
       | Some s ->
         s.s_conns <- s.s_conns - 1;
         Metrics.Gauge.set_int s.s_live s.s_conns
       | None -> ());
      target.s_conns <- target.s_conns + 1;
      Metrics.Gauge.set_int target.s_live target.s_conns;
      conn.session <- Some target;
      Ok ()
    end

let handle_tenant t conn rest =
  let words = List.filter (( <> ) "") (String.split_on_char ' ' rest) in
  match words with
  | [] -> `Reply "ERR tenant subcommand required (CREATE/USE/DROP/LIST)"
  | sub :: args ->
    (match (String.uppercase_ascii sub, args) with
     | "LIST", [] -> `Reply (tenant_list_lines t)
     | "LIST", _ -> `Reply "ERR tenant list takes no arguments"
     | "CREATE", (name :: rest_args) when List.length rest_args <= 1 ->
       if not (valid_tenant_name name) then
         `Reply "ERR invalid tenant name (want [A-Za-z0-9_.-]{1,64})"
       else if Hashtbl.mem t.sessions name then
         `Reply (Printf.sprintf "ERR tenant %s exists" name)
       else begin
         let dbspec = match rest_args with [ d ] -> d | _ -> name in
         match t.factory dbspec with
         | Error msg -> `Reply ("ERR " ^ msg)
         | Ok service ->
           Hashtbl.replace t.sessions name (make_session name service);
           Metrics.Gauge.set_int m_tenants (Hashtbl.length t.sessions);
           `Reply (Printf.sprintf "OK tenant %s created" name)
       end
     | "CREATE", _ -> `Reply "ERR usage: TENANT CREATE <name> [<db>]"
     | "USE", [ name ] ->
       (match Hashtbl.find_opt t.sessions name with
        | None -> `Reply (Printf.sprintf "ERR no such tenant %s" name)
        | Some s ->
          (match bind_session t conn s with
           | Ok () -> `Reply (Printf.sprintf "OK tenant %s" name)
           | Error msg -> `Reply ("ERR " ^ msg)))
     | "USE", _ -> `Reply "ERR usage: TENANT USE <name>"
     | "DROP", [ name ] ->
       (match Hashtbl.find_opt t.sessions name with
        | None -> `Reply (Printf.sprintf "ERR no such tenant %s" name)
        | Some s ->
          Hashtbl.remove t.sessions name;
          Metrics.Gauge.set_int m_tenants (Hashtbl.length t.sessions);
          (* Unbind this tenant's connections; they keep draining and
             may rebind with TENANT USE. *)
          let unbound = ref 0 in
          Hashtbl.iter
            (fun _ c ->
              match c.session with
              | Some s' when s' == s ->
                c.session <- None;
                incr unbound
              | _ -> ())
            t.conns;
          s.s_conns <- 0;
          Metrics.Gauge.set_int s.s_live 0;
          `Reply
            (Printf.sprintf "OK tenant %s dropped conns=%d" name !unbound))
     | "DROP", _ -> `Reply "ERR usage: TENANT DROP <name>"
     | _ -> `Reply "ERR unknown tenant subcommand (CREATE/USE/DROP/LIST)")

(* Returns the response plus whether the daemon should stop / the
   connection should close. Service verbs dispatch through the
   connection's bound session. *)
let handle_command t conn line =
  let verb, rest = split_verb line in
  let with_session f =
    match conn.session with
    | None -> `Reply no_tenant_reply
    | Some s ->
      Metrics.Counter.incr s.s_commands;
      f s
  in
  match (String.uppercase_ascii verb, rest) with
  | "STMT", "" -> (`Reply "ERR empty statement", `Keep)
  | "STMT", sql ->
    ( with_session (fun s ->
          `Reply (stmt_reply s (Service.feed s.s_service sql))),
      `Keep )
  | "STATS", _ ->
    (with_session (fun s -> `Reply ("OK " ^ stats_line s.s_service)), `Keep)
  | "CONFIG", _ ->
    ( with_session (fun s ->
          let db = Service.database s.s_service in
          let config = Service.config s.s_service in
          let lines =
            List.map
              (fun ix ->
                Printf.sprintf "%s %d" (Index.to_string ix)
                  (Database.index_pages db ix))
              config
          in
          `Reply
            (String.concat "\n"
               (Printf.sprintf "OK %d" (List.length lines) :: lines))),
      `Keep )
  | "EPOCH", _ ->
    ( with_session (fun s ->
          match Service.force_epoch s.s_service with
          | Ok o ->
            Metrics.Counter.incr s.s_epochs;
            `Reply ("OK " ^ epoch_line o)
          | Error msg -> `Reply ("ERR " ^ msg)),
      `Keep )
  | "METRICS", _ ->
    let lines = Metrics.dump_lines Metrics.default in
    ( `Reply
        (String.concat "\n"
           (Printf.sprintf "OK %d" (List.length lines) :: lines)),
      `Keep )
  | "TENANT", _ -> (handle_tenant t conn rest, `Keep)
  | "QUIT", _ -> (`Reply "OK bye", `Close)
  | "SHUTDOWN", _ -> (`Reply "OK shutting down", `Stop)
  | "", _ -> (`Reply "ERR empty command", `Keep)
  | _ -> (`Reply "ERR unknown command", `Keep)

let dispatch_one t conn line =
  t.commands_served <- t.commands_served + 1;
  Metrics.Counter.incr m_commands;
  let `Reply reply, action =
    Metrics.time (command_histogram line) (fun () ->
        handle_command t conn line)
  in
  (match action with
   | `Keep -> respond t conn reply
   | `Close ->
     conn.closing <- true;
     Queue.clear conn.pending;
     respond t conn reply
   | `Stop ->
     conn.closing <- true;
     Queue.clear conn.pending;
     respond t conn reply;
     t.running <- false)

(* Is [line] a feedable statement ("STMT <sql>" with nonempty sql)?
   Empty STMTs answer an error without consuming a statement id, so
   they must not join a batch. *)
let stmt_sql line =
  let verb, rest = split_verb line in
  if String.uppercase_ascii verb = "STMT" && rest <> "" then Some rest
  else None

(* Dispatch a contiguous pipelined run of STMT lines as one
   [Service.feed_batch] (pool-parsed). Replies are identical to
   one-at-a-time dispatch; the per-verb histogram records the mean
   per-statement latency of the batch. *)
let dispatch_stmt_batch t conn sqls =
  let n = List.length sqls in
  t.commands_served <- t.commands_served + n;
  Metrics.Counter.add m_commands n;
  match conn.session with
  | None ->
    List.iter (fun _ -> respond t conn no_tenant_reply) sqls
  | Some s ->
    Metrics.Counter.add s.s_commands n;
    let h = List.assoc "stmt" m_command_seconds in
    let events, elapsed =
      Im_util.Stopwatch.time (fun () -> Service.feed_batch s.s_service sqls)
    in
    let per = elapsed /. float_of_int n in
    List.iter
      (fun ev ->
        Metrics.Histogram.observe h per;
        respond t conn (stmt_reply s ev))
      events

(* Dispatch up to [commands_per_round] pending lines on one
   connection. Contiguous STMT runs go through the batch path. *)
let process_pending t conn =
  let budget = ref commands_per_round in
  while
    !budget > 0
    && t.running
    && (not conn.closed)
    && (not conn.closing)
    && not (Queue.is_empty conn.pending)
  do
    match stmt_sql (Queue.peek conn.pending) with
    | None ->
      decr budget;
      dispatch_one t conn (Queue.pop conn.pending)
    | Some _ ->
      (* Gather the whole contiguous STMT run within budget. *)
      let sqls = ref [] in
      let continue = ref true in
      while
        !continue && !budget > 0 && not (Queue.is_empty conn.pending)
      do
        match stmt_sql (Queue.peek conn.pending) with
        | Some sql ->
          ignore (Queue.pop conn.pending);
          decr budget;
          sqls := sql :: !sqls
        | None -> continue := false
      done;
      (match List.rev !sqls with
       | [] -> ()
       | [ sql ] ->
         (* Preserve the exact single-command path (same timing
            semantics) for unpipelined clients. *)
         dispatch_one t conn ("STMT " ^ sql)
       | sqls -> dispatch_stmt_batch t conn sqls)
  done;
  if not conn.closed then begin
    flush_out t conn;
    maybe_close_drained t conn
  end

(* ---- Reading ---- *)

(* Move complete lines from [conn.buf] to [conn.pending]. Scans from an
   advancing offset and compacts the buffer once: a pipelined batch of
   N commands costs O(bytes). *)
let extract_lines conn =
  let s = Buffer.contents conn.buf in
  let len = String.length s in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt s !pos '\n' with
    | None -> continue := false
    | Some i ->
      let line = String.sub s !pos (i - !pos) in
      pos := i + 1;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Queue.push (String.trim line) conn.pending
  done;
  Buffer.clear conn.buf;
  if !pos < len then Buffer.add_substring conn.buf s !pos (len - !pos)

let read_chunk t conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 4096 with
  | 0 ->
    (* Half close: the peer promises no more input. Answer what it
       already pipelined, drain the replies, then close — closing here
       discarded every queued reply. *)
    conn.eof <- true;
    extract_lines conn;
    Buffer.clear conn.buf;  (* a partial line can never complete now *)
    maybe_close_drained t conn
  | n ->
    conn.last_active <- Im_util.Stopwatch.now_s ();
    Metrics.Counter.add m_bytes_in n;
    Buffer.add_subbytes conn.buf bytes 0 n;
    extract_lines conn;
    if Buffer.length conn.buf > max_line_bytes then begin
      (* A single line this long is abuse, not SQL: diagnose, count,
         and close once the error (and nothing else) drains. *)
      Metrics.Counter.incr m_overlong;
      Buffer.clear conn.buf;
      Queue.clear conn.pending;
      respond t conn "ERR line too long";
      conn.closing <- true;
      flush_out t conn;
      maybe_close_drained t conn
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn t conn

(* ---- Accepting ---- *)

let overload_msg = "ERR too many connections\n"
let tenant_overload_msg = "ERR too many connections for tenant\n"

(* Best-effort reject: the fd is nonblocking *before* the write, so a
   connect-and-never-read client cannot stall the accept loop; a
   partial or failed write is ignored. *)
let reject_fd fd msg =
  Metrics.Counter.incr m_rejected;
  (try ignore (Unix.write_substring fd msg 0 (String.length msg))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t fd =
  Unix.set_nonblock fd;
  if Hashtbl.length t.conns >= t.max_connections then reject_fd fd overload_msg
  else begin
    let session = Hashtbl.find_opt t.sessions t.default_tenant in
    let tenant_full =
      match session with
      | Some s -> s.s_conns >= t.max_tenant_connections
      | None -> false
    in
    if tenant_full then reject_fd fd tenant_overload_msg
    else begin
      t.connections_served <- t.connections_served + 1;
      let conn =
        {
          fd;
          buf = Buffer.create 256;
          pending = Queue.create ();
          out = { oq = Queue.create (); oq_head = 0; oq_bytes = 0 };
          session = None;
          last_active = Im_util.Stopwatch.now_s ();
          closing = false;
          eof = false;
          closed = false;
        }
      in
      (match session with
       | Some s ->
         s.s_conns <- s.s_conns + 1;
         Metrics.Gauge.set_int s.s_live s.s_conns;
         conn.session <- Some s
       | None -> ());
      Hashtbl.replace t.conns fd conn;
      Metrics.Gauge.set_int m_live (Hashtbl.length t.conns)
    end
  end

(* Accept every connection the kernel has queued, not one per select
   round: a burst of N connects previously took N rounds. Bounded so a
   connect flood cannot starve established connections either. *)
let accept_burst t =
  let accepted = ref 0 in
  let continue = ref true in
  while !continue && !accepted < 1024 do
    match Unix.accept t.listener with
    | fd, _addr ->
      incr accepted;
      admit t fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      ()
  done;
  if float_of_int !accepted > Metrics.Gauge.value m_accept_burst then
    Metrics.Gauge.set_int m_accept_burst !accepted

(* ---- Reaping ---- *)

let reap_idle t snapshot =
  let now = Im_util.Stopwatch.now_s () in
  List.iter
    (fun conn ->
      if (not conn.closed) && now -. conn.last_active > t.read_timeout then begin
        (* Give queued replies a last chance to leave before dropping
           the connection. *)
        flush_out t conn;
        if not conn.closed then begin
          if conn.out.oq_bytes = 0 then begin
            Metrics.Counter.incr m_reaped;
            close_conn t conn
          end
          else
            (* Pending output on a still-writable socket means the main
               loop will drain it next round; reap only sockets that
               stopped accepting bytes. (No leak: once the kernel buffer
               fills, the socket stops selecting writable.) *)
            match Unix.select [] [ conn.fd ] [] 0. with
            | _, _ :: _, _ -> ()
            | _, [], _ | (exception Unix.Unix_error _) ->
              Metrics.Counter.incr m_reaped;
              close_conn t conn
        end
      end)
    snapshot

(* ---- Event loop ---- *)

let serve t =
  t.running <- true;
  Unix.set_nonblock t.listener;
  while t.running do
    let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let reads =
      t.listener
      :: List.filter_map
           (fun c ->
             if
               (not c.closing) && (not c.eof)
               && Queue.length c.pending < max_pending_lines
             then Some c.fd
             else None)
           snapshot
    in
    let writes =
      List.filter_map
        (fun c -> if c.out.oq_bytes > 0 then Some c.fd else None)
        snapshot
    in
    let backlog =
      List.exists (fun c -> not (Queue.is_empty c.pending)) snapshot
    in
    let timeout = if backlog then 0.0 else 1.0 in
    match Unix.select reads writes [] timeout with
    | readable, writable, _ ->
      if List.mem t.listener readable then accept_burst t;
      (* Handlers may close connections mid-iteration: every step
         rechecks [conn.closed] before touching the fd. *)
      List.iter
        (fun conn ->
          if (not conn.closed) && List.mem conn.fd writable then begin
            flush_out t conn;
            maybe_close_drained t conn
          end)
        snapshot;
      List.iter
        (fun conn ->
          if (not conn.closed) && List.mem conn.fd readable then
            read_chunk t conn)
        snapshot;
      List.iter
        (fun conn -> if not conn.closed then process_pending t conn)
        snapshot;
      reap_idle t snapshot
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful shutdown: best-effort flush, then close everything. *)
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun conn -> flush_out t conn) remaining;
  List.iter
    (fun conn ->
      if not conn.closed then begin
        conn.closed <- true;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)
    remaining;
  Hashtbl.reset t.conns;
  Metrics.Gauge.set_int m_live 0;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
