module Database = Im_catalog.Database
module Index = Im_catalog.Index
module Metrics = Im_obs.Metrics

let m_commands = Metrics.counter "server_commands_total"
let m_live = Metrics.gauge "server_connections_live"
let m_bytes_in = Metrics.counter "server_bytes_in_total"
let m_bytes_out = Metrics.counter "server_bytes_out_total"
let m_reaped = Metrics.counter "server_connections_reaped_total"
let m_rejected = Metrics.counter "server_connections_rejected_total"
let m_write_errors = Metrics.counter "server_write_errors_total"

(* Per-verb latency histograms; unknown verbs share one "other" series
   so a hostile client cannot grow the label set. *)
let m_command_seconds =
  List.map
    (fun verb ->
      ( verb,
        Metrics.histogram ~labels:[ ("verb", verb) ] "server_command_seconds"
      ))
    [ "stmt"; "stats"; "config"; "epoch"; "metrics"; "quit"; "shutdown";
      "other" ]

let command_histogram line =
  let verb =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let verb = String.lowercase_ascii verb in
  let verb = if List.mem_assoc verb m_command_seconds then verb else "other" in
  List.assoc verb m_command_seconds

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable last_active : float;  (* monotonic seconds, Stopwatch.now_s *)
  mutable closing : bool;  (* close after pending output drains *)
  mutable out : string;  (* unsent response bytes *)
}

type t = {
  service : Service.t;
  listener : Unix.file_descr;
  bound_port : int;
  read_timeout : float;
  max_connections : int;
  mutable conns : conn list;
  mutable running : bool;
  mutable connections_served : int;
  mutable commands_served : int;
}

let create ?(host = "127.0.0.1") ?(port = 0) ?(read_timeout = 30.)
    ?(max_connections = 64) service =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listener 16;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  {
    service;
    listener;
    bound_port;
    read_timeout;
    max_connections;
    conns = [];
    running = false;
    connections_served = 0;
    commands_served = 0;
  }

let port t = t.bound_port
let shutdown t = t.running <- false
let connections_served t = t.connections_served
let commands_served t = t.commands_served

(* ---- Protocol ---- *)

let stats_line service =
  Service.stats service
  |> List.map (fun (k, v) ->
         let k =
           String.map (fun c -> if c = ' ' then '_' else c)
             (match String.index_opt k '(' with
              | Some i -> String.trim (String.sub k 0 i)
              | None -> k)
         in
         let v = String.map (fun c -> if c = ' ' then '_' else c) v in
         k ^ "=" ^ v)
  |> String.concat " "

let epoch_line (o : Epoch.outcome) =
  Printf.sprintf
    "epoch trigger=%s diff=%s pages=%d->%d cost=%.1f->%.1f benefit=%.3f \
     clusters=%d/%d opt_calls=%d"
    (Epoch.trigger_to_string o.Epoch.e_trigger)
    (Epoch.diff_to_string o.Epoch.e_diff)
    o.Epoch.e_old_pages o.Epoch.e_new_pages o.Epoch.e_old_cost
    o.Epoch.e_new_cost o.Epoch.e_benefit o.Epoch.e_clusters_tuned
    o.Epoch.e_budget_clusters o.Epoch.e_opt_calls

(* Returns the response plus whether the daemon should stop / the
   connection should close. *)
let handle_command t line =
  let verb, rest =
    match String.index_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  match (String.uppercase_ascii verb, rest) with
  | "STMT", "" -> (`Reply "ERR empty statement", `Keep)
  | "STMT", sql ->
    (match Service.feed t.service sql with
     | Service.Rejected msg -> (`Reply ("ERR " ^ msg), `Keep)
     | Service.Observed { ev_epoch = Some o; _ } ->
       (`Reply ("OK observed " ^ epoch_line o), `Keep)
     | Service.Observed { ev_drift = Some v; _ } ->
       ( `Reply
           (Printf.sprintf "OK observed drift=%.3f regression=%.3f fired=%b"
              v.Drift.v_divergence v.Drift.v_regression v.Drift.v_fired),
         `Keep )
     | Service.Observed _ -> (`Reply "OK observed", `Keep))
  | "STATS", _ -> (`Reply ("OK " ^ stats_line t.service), `Keep)
  | "CONFIG", _ ->
    let db = Service.database t.service in
    let config = Service.config t.service in
    let lines =
      List.map
        (fun ix ->
          Printf.sprintf "%s %d" (Index.to_string ix) (Database.index_pages db ix))
        config
    in
    ( `Reply
        (String.concat "\n" (Printf.sprintf "OK %d" (List.length lines) :: lines)),
      `Keep )
  | "EPOCH", _ ->
    (match Service.force_epoch t.service with
     | Ok o -> (`Reply ("OK " ^ epoch_line o), `Keep)
     | Error msg -> (`Reply ("ERR " ^ msg), `Keep))
  | "METRICS", _ ->
    let lines = Metrics.dump_lines Metrics.default in
    ( `Reply
        (String.concat "\n"
           (Printf.sprintf "OK %d" (List.length lines) :: lines)),
      `Keep )
  | "QUIT", _ -> (`Reply "OK bye", `Close)
  | "SHUTDOWN", _ -> (`Reply "OK shutting down", `Stop)
  | "", _ -> (`Reply "ERR empty command", `Keep)
  | _ -> (`Reply "ERR unknown command", `Keep)

(* ---- Event loop ---- *)

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Metrics.Gauge.set_int m_live (List.length t.conns)

(* Write as much of [conn.out] as the socket accepts. A peer that
   disconnected mid-reply surfaces here as EPIPE/ECONNRESET (EBADF or
   ENOTCONN if the fd was already torn down): that peer's failure must
   not unwind the serve loop — count it and drop only this
   connection. *)
let flush_out t conn =
  if conn.out <> "" then begin
    let b = Bytes.of_string conn.out in
    match Unix.write conn.fd b 0 (Bytes.length b) with
    | n ->
      Metrics.Counter.add m_bytes_out n;
      conn.out <- String.sub conn.out n (String.length conn.out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception
        Unix.Unix_error
          ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
      ->
      Metrics.Counter.incr m_write_errors;
      conn.out <- "";
      close_conn t conn
  end

let respond t conn reply =
  conn.out <- conn.out ^ reply ^ "\n";
  flush_out t conn;
  if List.memq conn t.conns && conn.out = "" && conn.closing then
    close_conn t conn

(* Consume complete lines from the connection buffer. Scans from an
   advancing offset and compacts the buffer once at the end: a
   pipelined batch of N commands costs O(bytes), where the old
   copy-per-line loop re-copied the whole buffer for every line and
   made large batches O(N^2). *)
let drain_lines t conn =
  let s = Buffer.contents conn.buf in
  let len = String.length s in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt s !pos '\n' with
    | None -> continue := false
    | Some i ->
      let line = String.sub s !pos (i - !pos) in
      pos := i + 1;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      t.commands_served <- t.commands_served + 1;
      Metrics.Counter.incr m_commands;
      let line = String.trim line in
      let `Reply reply, action =
        Metrics.time (command_histogram line) (fun () -> handle_command t line)
      in
      (match action with
       | `Keep -> respond t conn reply
       | `Close ->
         conn.closing <- true;
         respond t conn reply
       | `Stop ->
         conn.closing <- true;
         respond t conn reply;
         t.running <- false);
      if not (t.running && List.memq conn t.conns) then continue := false
  done;
  if List.memq conn t.conns then begin
    Buffer.clear conn.buf;
    if !pos < len then Buffer.add_substring conn.buf s !pos (len - !pos)
  end

let read_chunk t conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 4096 with
  | 0 -> close_conn t conn
  | n ->
    conn.last_active <- Im_util.Stopwatch.now_s ();
    Metrics.Counter.add m_bytes_in n;
    Buffer.add_subbytes conn.buf bytes 0 n;
    if Buffer.length conn.buf > 1_000_000 then begin
      (* a line this long is abuse, not SQL *)
      conn.out <- "";
      close_conn t conn
    end
    else drain_lines t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn t conn

let overload_msg = "ERR too many connections\n"

let accept_conn t =
  match Unix.accept t.listener with
  | fd, _addr ->
    if List.length t.conns >= t.max_connections then begin
      Metrics.Counter.incr m_rejected;
      (try
         ignore
           (Unix.write fd
              (Bytes.of_string overload_msg)
              0
              (String.length overload_msg))
       with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      Unix.set_nonblock fd;
      t.connections_served <- t.connections_served + 1;
      t.conns <-
        {
          fd;
          buf = Buffer.create 256;
          last_active = Im_util.Stopwatch.now_s ();
          closing = false;
          out = "";
        }
        :: t.conns;
      Metrics.Gauge.set_int m_live (List.length t.conns)
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let reap_idle t =
  let now = Im_util.Stopwatch.now_s () in
  List.iter
    (fun conn ->
      if List.memq conn t.conns && now -. conn.last_active > t.read_timeout
      then begin
        (* Give queued replies a last chance to leave before dropping
           the connection. *)
        flush_out t conn;
        if List.memq conn t.conns then begin
          if conn.out = "" then begin
            Metrics.Counter.incr m_reaped;
            close_conn t conn
          end
          else
            (* Pending output on a still-writable socket means the main
               loop will drain it next round; reap only sockets that
               stopped accepting bytes. (No leak: once the kernel buffer
               fills, the socket stops selecting writable.) *)
            match Unix.select [] [ conn.fd ] [] 0. with
            | _, _ :: _, _ -> ()
            | _, [], _ | (exception Unix.Unix_error _) ->
              Metrics.Counter.incr m_reaped;
              close_conn t conn
        end
      end)
    t.conns

let serve t =
  t.running <- true;
  Unix.set_nonblock t.listener;
  while t.running do
    let reads = t.listener :: List.map (fun c -> c.fd) t.conns in
    let writes =
      List.filter_map
        (fun c -> if c.out <> "" then Some c.fd else None)
        t.conns
    in
    match Unix.select reads writes [] 1.0 with
    | readable, writable, _ ->
      if List.mem t.listener readable then accept_conn t;
      (* Handlers may close connections mid-iteration: work on a
         snapshot and recheck membership before touching each fd. *)
      let snapshot = t.conns in
      List.iter
        (fun conn ->
          if List.memq conn t.conns && List.mem conn.fd writable then begin
            flush_out t conn;
            if List.memq conn t.conns && conn.out = "" && conn.closing then
              close_conn t conn
          end)
        snapshot;
      List.iter
        (fun conn ->
          if List.memq conn t.conns && List.mem conn.fd readable then
            read_chunk t conn)
        snapshot;
      reap_idle t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful shutdown: best-effort flush, then close everything. *)
  List.iter (fun conn -> flush_out t conn) t.conns;
  List.iter (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- [];
  try Unix.close t.listener with Unix.Unix_error _ -> ()
