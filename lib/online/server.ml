module Database = Im_catalog.Database
module Index = Im_catalog.Index
module Metrics = Im_obs.Metrics
module Evloop = Im_evloop.Evloop

let m_commands = Metrics.counter "server_commands_total"
let m_live = Metrics.gauge "server_connections_live"
let m_tenants = Metrics.gauge "server_tenants"
let m_bytes_in = Metrics.counter "server_bytes_in_total"
let m_bytes_out = Metrics.counter "server_bytes_out_total"
let m_reaped = Metrics.counter "server_connections_reaped_total"
let m_rejected = Metrics.counter "server_connections_rejected_total"
let m_write_errors = Metrics.counter "server_write_errors_total"
let m_backpressure = Metrics.counter "server_backpressure_closed_total"
let m_overlong = Metrics.counter "server_overlong_lines_total"

(* High-water mark of any connection's queued output, and the largest
   number of connections accepted in a single loop round (1 forever
   means the accept loop is serializing bursts again). *)
let m_out_high_water = Metrics.gauge "server_out_queue_max_bytes"
let m_accept_burst = Metrics.gauge "server_accept_burst_max"

(* Off-thread epochs: how many re-merges left the dispatch thread, and
   the cumulative seconds the dispatch thread has spent blocked on
   epoch work (inline runs count in full; offloaded epochs count only
   their commit). Fairness: rounds where a tenant's deficit budget ran
   out with work still queued. *)
let m_epoch_offloaded = Metrics.counter "server_epoch_offloaded_total"
let m_dispatch_stall = Metrics.gauge "server_dispatch_stall_seconds"
let m_fairness_deferred = Metrics.counter "server_fairness_deferred_total"

(* Per-verb latency histograms; unknown verbs share one "other" series
   so a hostile client cannot grow the label set. *)
let m_command_seconds =
  List.map
    (fun verb ->
      ( verb,
        Metrics.histogram ~labels:[ ("verb", verb) ] "server_command_seconds"
      ))
    [ "stmt"; "stats"; "config"; "epoch"; "metrics"; "tenant"; "quit";
      "shutdown"; "other" ]

let command_histogram line =
  let verb =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let verb = String.lowercase_ascii verb in
  let verb = if List.mem_assoc verb m_command_seconds then verb else "other" in
  List.assoc verb m_command_seconds

(* ---- Tenants ---- *)

(* One tenant session: a [Service.t] (own window, drift detector,
   costsvc/derive cache, epoch history) plus per-tenant instruments.
   Tenant names bound metric labels, so they are restricted to a safe
   charset. [s_weight] scales the tenant's per-round dispatch budget
   (deficit round-robin over sessions). *)
type session = {
  s_name : string;
  s_service : Service.t;
  s_weight : int;
  mutable s_conns : int;  (* connections currently bound here *)
  s_live : Metrics.Gauge.t;  (* server_tenant_connections_live{tenant} *)
  s_commands : Metrics.Counter.t;  (* server_tenant_commands_total{tenant} *)
  s_epochs : Metrics.Counter.t;  (* server_tenant_epochs_total{tenant} *)
}

let valid_tenant_name name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       name

let make_session ?(weight = 1) name service =
  {
    s_name = name;
    s_service = service;
    s_weight = max 1 weight;
    s_conns = 0;
    s_live =
      Metrics.gauge ~labels:[ ("tenant", name) ]
        "server_tenant_connections_live";
    s_commands =
      Metrics.counter ~labels:[ ("tenant", name) ]
        "server_tenant_commands_total";
    s_epochs =
      Metrics.counter ~labels:[ ("tenant", name) ] "server_tenant_epochs_total";
  }

(* ---- Connections ---- *)

(* Output is a byte-capped queue of reply chunks with a head offset, so
   a partial write never re-copies the rest of the queue (the old
   [String.sub] tail made a slow reader O(bytes^2)). *)
type outq = {
  oq : string Queue.t;
  mutable oq_head : int;  (* bytes of [Queue.peek oq] already written *)
  mutable oq_bytes : int;  (* total unsent bytes *)
}

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* incomplete trailing line *)
  pending : string Queue.t;  (* complete lines awaiting dispatch *)
  out : outq;
  mutable session : session option;  (* None after TENANT DROP *)
  mutable last_active : float;  (* monotonic seconds, Stopwatch.now_s *)
  mutable closing : bool;  (* discard input; close once output drains *)
  mutable eof : bool;  (* peer half-closed; drain pending + output *)
  mutable closed : bool;  (* fd is gone; every path rechecks this *)
  mutable awaiting_epoch : bool;
      (* this connection's next reply is an epoch running off-thread;
         dispatch is paused until the completion is delivered *)
  mutable stalled : bool;
      (* head-of-queue EPOCH is waiting for the tenant's in-flight
         epoch to commit; the line stays queued, no budget is spent *)
  mutable replay : string list;
      (* raw STMT sqls handed back by [Service.feed_batch_async] when a
         trigger interrupted a pipelined batch; dispatched (under their
         already-assigned ids) before [pending] once the epoch lands *)
}

(* An off-thread epoch the dispatch loop is waiting on, keyed by the
   [Epoch_worker.submit] ticket. *)
type pending_epoch = {
  pe_session : session;
  pe_conn : conn;  (* where the reply goes (dropped if closed) *)
  pe_kind : [ `Stmt | `Forced ];
}

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  read_timeout : float;
  max_connections : int;
  max_tenant_connections : int;
  max_output_bytes : int;
  factory : string -> (Service.t, string) result;
  sessions : (string, session) Hashtbl.t;
  default_tenant : string;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  ev : Evloop.t;
  wake_r : Unix.file_descr;  (* worker completions poke this pipe *)
  wake_w : Unix.file_descr;
  worker : Epoch_worker.t option;  (* None: epochs run inline (PR8) *)
  pending_epochs : (int, pending_epoch) Hashtbl.t;
  (* Connections with dispatchable work; drives the zero-timeout
     re-poll and the fairness round, without rescanning every conn. *)
  backlog : (Unix.file_descr, conn) Hashtbl.t;
  mutable rr_cursor : int;  (* rotates tenant service order per round *)
  mutable last_reap : float;
  mutable running : bool;
  mutable connections_served : int;
  mutable commands_served : int;
  mutable out_high_water : int;
}

(* Base dispatch budget per session per loop round (scaled by the
   session's weight, shared across its connections). Bounds how long
   one tenant can monopolize the loop before accepts and other tenants
   get a turn; rounds with leftover pending work re-poll with a zero
   timeout. *)
let commands_per_round = 128

(* When a session has several connections with work, each takes at
   most this many commands per pass so the budget round-robins among
   them instead of draining the first connection whole. *)
let commands_per_turn = 32

(* Input backpressure: a connection with this many parsed-but-undispatched
   lines stops being read until the dispatcher catches up. *)
let max_pending_lines = 1024

(* A single line longer than this is abuse, not SQL. *)
let max_line_bytes = 1_000_000

let no_factory _ = Error "tenant creation is not configured"

let create ?(host = "127.0.0.1") ?(port = 0) ?(read_timeout = 30.)
    ?(max_connections = 64) ?max_tenant_connections
    ?(max_output_bytes = 1_048_576) ?(tenant = "default") ?(tenants = [])
    ?(weights = []) ?(factory = no_factory)
    ?(event_backend = Evloop.Auto) ?(epoch_workers = 1) service =
  if not (valid_tenant_name tenant) then
    invalid_arg ("Server.create: invalid tenant name " ^ tenant);
  List.iter
    (fun (name, _) ->
      if not (valid_tenant_name name) then
        invalid_arg ("Server.create: invalid tenant name " ^ name);
      if name = tenant then
        invalid_arg ("Server.create: duplicate tenant " ^ name))
    tenants;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (* Accepted sockets inherit the listener's buffer sizes; shrinking
     the send buffer (tests, or ops pinning memory per connection)
     makes slow readers surface as queued output instead of hiding in
     kernel buffers. *)
  (match Sys.getenv_opt "IM_SERVE_SNDBUF" with
   | Some s ->
     (match int_of_string_opt s with
      | Some n when n > 0 -> Unix.setsockopt_int listener Unix.SO_SNDBUF n
      | Some _ | None -> ())
   | None -> ());
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listener 2048;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let weight_of name =
    match List.assoc_opt name weights with Some w -> w | None -> 1
  in
  let sessions = Hashtbl.create 8 in
  Hashtbl.replace sessions tenant
    (make_session ~weight:(weight_of tenant) tenant service);
  List.iter
    (fun (name, svc) ->
      if Hashtbl.mem sessions name then
        invalid_arg ("Server.create: duplicate tenant " ^ name);
      Hashtbl.replace sessions name
        (make_session ~weight:(weight_of name) name svc))
    tenants;
  Metrics.Gauge.set_int m_tenants (Hashtbl.length sessions);
  let ev = Evloop.create ~backend:event_backend () in
  Evloop.add ev listener ~read:true ~write:false;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Evloop.add ev wake_r ~read:true ~write:false;
  let worker =
    if epoch_workers > 0 then
      Some
        (Epoch_worker.create ~workers:epoch_workers
           ~wakeup:(fun () ->
             (* A full pipe already guarantees a pending wake-up. *)
             try ignore (Unix.write_substring wake_w "!" 0 1)
             with Unix.Unix_error _ -> ()))
    else None
  in
  {
    listener;
    bound_port;
    read_timeout;
    max_connections;
    max_tenant_connections =
      (match max_tenant_connections with
       | Some n when n > 0 -> n
       | Some _ | None -> max_connections);
    max_output_bytes = max 1 max_output_bytes;
    factory;
    sessions;
    default_tenant = tenant;
    conns = Hashtbl.create 64;
    ev;
    wake_r;
    wake_w;
    worker;
    pending_epochs = Hashtbl.create 8;
    backlog = Hashtbl.create 64;
    rr_cursor = 0;
    last_reap = Im_util.Stopwatch.now_s ();
    running = false;
    connections_served = 0;
    commands_served = 0;
    out_high_water = 0;
  }

let port t = t.bound_port
let event_backend t = Evloop.backend_name t.ev
let shutdown t = t.running <- false
let connections_served t = t.connections_served
let commands_served t = t.commands_served
let tenants t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.sessions [])

(* ---- Protocol rendering ---- *)

let stats_line service =
  Service.stats service
  |> List.map (fun (k, v) ->
         let k =
           String.map (fun c -> if c = ' ' then '_' else c)
             (match String.index_opt k '(' with
              | Some i -> String.trim (String.sub k 0 i)
              | None -> k)
         in
         let v = String.map (fun c -> if c = ' ' then '_' else c) v in
         k ^ "=" ^ v)
  |> String.concat " "

let epoch_line (o : Epoch.outcome) =
  Printf.sprintf
    "epoch trigger=%s diff=%s pages=%d->%d cost=%.1f->%.1f benefit=%.3f \
     clusters=%d/%d opt_calls=%d"
    (Epoch.trigger_to_string o.Epoch.e_trigger)
    (Epoch.diff_to_string o.Epoch.e_diff)
    o.Epoch.e_old_pages o.Epoch.e_new_pages o.Epoch.e_old_cost
    o.Epoch.e_new_cost o.Epoch.e_benefit o.Epoch.e_clusters_tuned
    o.Epoch.e_budget_clusters o.Epoch.e_opt_calls

(* The reply to one observed-statement event. [Some epoch] outranks
   [Some drift]: an epoch that fired carries the drift information.
   An inline epoch stalled the dispatch thread for its full
   duration. *)
let stmt_reply session = function
  | Service.Rejected msg -> "ERR " ^ msg
  | Service.Observed { ev_epoch = Some o; _ } ->
    Metrics.Counter.incr session.s_epochs;
    Metrics.Gauge.add m_dispatch_stall o.Epoch.e_elapsed_s;
    "OK observed " ^ epoch_line o
  | Service.Observed { ev_drift = Some v; _ } ->
    Printf.sprintf "OK observed drift=%.3f regression=%.3f fired=%b"
      v.Drift.v_divergence v.Drift.v_regression v.Drift.v_fired
  | Service.Observed _ -> "OK observed"

(* ---- Connection lifecycle ---- *)

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    Evloop.remove t.ev conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns conn.fd;
    Hashtbl.remove t.backlog conn.fd;
    (match conn.session with
     | Some s ->
       s.s_conns <- s.s_conns - 1;
       Metrics.Gauge.set_int s.s_live s.s_conns
     | None -> ());
    conn.session <- None;
    Metrics.Gauge.set_int m_live (Hashtbl.length t.conns)
  end

(* Write as much queued output as the socket accepts. A peer that
   disconnected mid-reply surfaces here as EPIPE/ECONNRESET (EBADF or
   ENOTCONN if the fd was already torn down): that peer's failure must
   not unwind the serve loop — count it and drop only this
   connection. *)
let flush_out t conn =
  let continue = ref (not conn.closed) in
  while !continue && not (Queue.is_empty conn.out.oq) do
    let head = Queue.peek conn.out.oq in
    let off = conn.out.oq_head in
    let len = String.length head - off in
    match Unix.write_substring conn.fd head off len with
    | n ->
      Metrics.Counter.add m_bytes_out n;
      conn.out.oq_bytes <- conn.out.oq_bytes - n;
      if n = len then begin
        ignore (Queue.pop conn.out.oq);
        conn.out.oq_head <- 0
      end
      else begin
        conn.out.oq_head <- off + n;
        continue := false  (* kernel buffer full: wait for writable *)
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception
        Unix.Unix_error
          ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
      ->
      Metrics.Counter.incr m_write_errors;
      Queue.clear conn.out.oq;
      conn.out.oq_head <- 0;
      conn.out.oq_bytes <- 0;
      close_conn t conn;
      continue := false
  done

(* A closing connection goes once its output drains; a half-closed one
   additionally waits for its already-received commands to be answered
   (the half-close reply-loss fix: the peer's FIN promises no more
   input, not disinterest in the replies it pipelined). A connection
   awaiting an off-thread epoch keeps living until the reply it is
   owed has been queued. *)
let maybe_close_drained t conn =
  if
    (not conn.closed)
    && (conn.closing || conn.eof)
    && (not conn.awaiting_epoch)
    && conn.replay = []
    && Queue.is_empty conn.pending
    && conn.out.oq_bytes = 0
  then close_conn t conn

(* Queue one reply line. Exceeding the output cap is backpressure: the
   reader is not keeping up, so the overflowing reply is dropped, the
   connection is marked closing (it drains what was already queued,
   then closes) and the event is counted. *)
let respond t conn reply =
  if not conn.closed then begin
    let chunk = reply ^ "\n" in
    if conn.out.oq_bytes + String.length chunk > t.max_output_bytes then begin
      (* Count the close once, not once per reply dropped after it. *)
      if not conn.closing then Metrics.Counter.incr m_backpressure;
      Queue.clear conn.pending;
      conn.replay <- [];
      conn.closing <- true
    end
    else begin
      Queue.push chunk conn.out.oq;
      conn.out.oq_bytes <- conn.out.oq_bytes + String.length chunk;
      if conn.out.oq_bytes > t.out_high_water then begin
        t.out_high_water <- conn.out.oq_bytes;
        Metrics.Gauge.set_int m_out_high_water t.out_high_water
      end
    end
  end

(* Push this connection's desired interest set to the readiness layer;
   [Evloop.modify] skips the syscall when nothing changed, so calling
   this after every state transition is cheap. *)
let sync_interest t conn =
  if not conn.closed then begin
    let read =
      (not conn.closing) && (not conn.eof)
      && Queue.length conn.pending < max_pending_lines
    in
    let write = conn.out.oq_bytes > 0 in
    Evloop.modify t.ev conn.fd ~read ~write
  end

(* Does this connection have work the dispatcher could make progress
   on right now? Paused states (awaiting an off-thread epoch result,
   stalled behind the tenant's in-flight epoch) are excluded so they
   do not drive zero-timeout spin rounds. *)
let has_dispatch_work conn =
  (not conn.closed) && (not conn.closing) && (not conn.awaiting_epoch)
  && (not conn.stalled)
  && (conn.replay <> [] || not (Queue.is_empty conn.pending))

let note_backlog t conn =
  if has_dispatch_work conn then Hashtbl.replace t.backlog conn.fd conn
  else Hashtbl.remove t.backlog conn.fd

(* ---- Command dispatch ---- *)

let split_verb line =
  match String.index_opt line ' ' with
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  | None -> (line, "")

let no_tenant_reply = "ERR no tenant bound (TENANT USE <name>)"

let tenant_list_lines t =
  let rows =
    List.map
      (fun name ->
        let s = Hashtbl.find t.sessions name in
        Printf.sprintf "%s conns=%d statements=%d epochs=%d weight=%d" name
          s.s_conns
          (Service.statements s.s_service)
          (List.length (Service.epochs s.s_service))
          s.s_weight)
      (tenants t)
  in
  String.concat "\n"
    (Printf.sprintf "OK %d" (List.length rows) :: rows)

let bind_session t conn target =
  match conn.session with
  | Some s when s == target -> Ok ()
  | prev ->
    if
      target.s_conns >= t.max_tenant_connections
    then Error (Printf.sprintf "tenant %s is full" target.s_name)
    else begin
      (match prev with
       | Some s ->
         s.s_conns <- s.s_conns - 1;
         Metrics.Gauge.set_int s.s_live s.s_conns
       | None -> ());
      target.s_conns <- target.s_conns + 1;
      Metrics.Gauge.set_int target.s_live target.s_conns;
      conn.session <- Some target;
      Ok ()
    end

let handle_tenant t conn rest =
  let words = List.filter (( <> ) "") (String.split_on_char ' ' rest) in
  match words with
  | [] -> `Reply "ERR tenant subcommand required (CREATE/USE/DROP/LIST)"
  | sub :: args ->
    (match (String.uppercase_ascii sub, args) with
     | "LIST", [] -> `Reply (tenant_list_lines t)
     | "LIST", _ -> `Reply "ERR tenant list takes no arguments"
     | "CREATE", (name :: rest_args) when List.length rest_args <= 1 ->
       if not (valid_tenant_name name) then
         `Reply "ERR invalid tenant name (want [A-Za-z0-9_.-]{1,64})"
       else if Hashtbl.mem t.sessions name then
         `Reply (Printf.sprintf "ERR tenant %s exists" name)
       else begin
         let dbspec = match rest_args with [ d ] -> d | _ -> name in
         match t.factory dbspec with
         | Error msg -> `Reply ("ERR " ^ msg)
         | Ok service ->
           Hashtbl.replace t.sessions name (make_session name service);
           Metrics.Gauge.set_int m_tenants (Hashtbl.length t.sessions);
           `Reply (Printf.sprintf "OK tenant %s created" name)
       end
     | "CREATE", _ -> `Reply "ERR usage: TENANT CREATE <name> [<db>]"
     | "USE", [ name ] ->
       (match Hashtbl.find_opt t.sessions name with
        | None -> `Reply (Printf.sprintf "ERR no such tenant %s" name)
        | Some s ->
          (match bind_session t conn s with
           | Ok () -> `Reply (Printf.sprintf "OK tenant %s" name)
           | Error msg -> `Reply ("ERR " ^ msg)))
     | "USE", _ -> `Reply "ERR usage: TENANT USE <name>"
     | "DROP", [ name ] ->
       (match Hashtbl.find_opt t.sessions name with
        | None -> `Reply (Printf.sprintf "ERR no such tenant %s" name)
        | Some s ->
          Hashtbl.remove t.sessions name;
          Metrics.Gauge.set_int m_tenants (Hashtbl.length t.sessions);
          (* Unbind this tenant's connections; they keep draining and
             may rebind with TENANT USE. A connection stalled behind
             this tenant's in-flight epoch unstalls — the session it
             was waiting on is gone. *)
          let unbound = ref 0 in
          Hashtbl.iter
            (fun _ c ->
              match c.session with
              | Some s' when s' == s ->
                c.session <- None;
                c.stalled <- false;
                note_backlog t c;
                incr unbound
              | _ -> ())
            t.conns;
          s.s_conns <- 0;
          Metrics.Gauge.set_int s.s_live 0;
          `Reply
            (Printf.sprintf "OK tenant %s dropped conns=%d" name !unbound))
     | "DROP", _ -> `Reply "ERR usage: TENANT DROP <name>"
     | _ -> `Reply "ERR unknown tenant subcommand (CREATE/USE/DROP/LIST)")

(* Returns the response plus whether the daemon should stop / the
   connection should close. Service verbs dispatch through the
   connection's bound session. The offloaded EPOCH path never reaches
   here — [dispatch_conn] intercepts the verb when a worker exists. *)
let handle_command t conn line =
  let verb, rest = split_verb line in
  let with_session f =
    match conn.session with
    | None -> `Reply no_tenant_reply
    | Some s ->
      Metrics.Counter.incr s.s_commands;
      f s
  in
  match (String.uppercase_ascii verb, rest) with
  | "STMT", "" -> (`Reply "ERR empty statement", `Keep)
  | "STMT", sql ->
    ( with_session (fun s ->
          `Reply (stmt_reply s (Service.feed s.s_service sql))),
      `Keep )
  | "STATS", _ ->
    (with_session (fun s -> `Reply ("OK " ^ stats_line s.s_service)), `Keep)
  | "CONFIG", _ ->
    ( with_session (fun s ->
          let db = Service.database s.s_service in
          let config = Service.config s.s_service in
          let lines =
            List.map
              (fun ix ->
                Printf.sprintf "%s %d" (Index.to_string ix)
                  (Database.index_pages db ix))
              config
          in
          `Reply
            (String.concat "\n"
               (Printf.sprintf "OK %d" (List.length lines) :: lines))),
      `Keep )
  | "EPOCH", _ ->
    ( with_session (fun s ->
          match Service.force_epoch s.s_service with
          | Ok o ->
            Metrics.Counter.incr s.s_epochs;
            Metrics.Gauge.add m_dispatch_stall o.Epoch.e_elapsed_s;
            `Reply ("OK " ^ epoch_line o)
          | Error msg -> `Reply ("ERR " ^ msg)),
      `Keep )
  | "METRICS", _ ->
    let lines = Metrics.dump_lines Metrics.default in
    ( `Reply
        (String.concat "\n"
           (Printf.sprintf "OK %d" (List.length lines) :: lines)),
      `Keep )
  | "TENANT", _ -> (handle_tenant t conn rest, `Keep)
  | "QUIT", _ -> (`Reply "OK bye", `Close)
  | "SHUTDOWN", _ -> (`Reply "OK shutting down", `Stop)
  | "", _ -> (`Reply "ERR empty command", `Keep)
  | _ -> (`Reply "ERR unknown command", `Keep)

let dispatch_one t conn line =
  t.commands_served <- t.commands_served + 1;
  Metrics.Counter.incr m_commands;
  let `Reply reply, action =
    Metrics.time (command_histogram line) (fun () ->
        handle_command t conn line)
  in
  (match action with
   | `Keep -> respond t conn reply
   | `Close ->
     conn.closing <- true;
     Queue.clear conn.pending;
     respond t conn reply
   | `Stop ->
     conn.closing <- true;
     Queue.clear conn.pending;
     respond t conn reply;
     t.running <- false)

(* Is [line] a feedable statement ("STMT <sql>" with nonempty sql)?
   Empty STMTs answer an error without consuming a statement id, so
   they must not join a batch. *)
let stmt_sql line =
  let verb, rest = split_verb line in
  if String.uppercase_ascii verb = "STMT" && rest <> "" then Some rest
  else None

(* Dispatch a contiguous pipelined run of STMT lines as one
   [Service.feed_batch] (pool-parsed), epochs inline. Replies are
   identical to one-at-a-time dispatch; the per-verb histogram records
   the mean per-statement latency of the batch. *)
let dispatch_stmt_batch t conn sqls =
  let n = List.length sqls in
  t.commands_served <- t.commands_served + n;
  Metrics.Counter.add m_commands n;
  match conn.session with
  | None ->
    List.iter (fun _ -> respond t conn no_tenant_reply) sqls
  | Some s ->
    Metrics.Counter.add s.s_commands n;
    let h = List.assoc "stmt" m_command_seconds in
    let events, elapsed =
      Im_util.Stopwatch.time (fun () -> Service.feed_batch s.s_service sqls)
    in
    let per = elapsed /. float_of_int n in
    List.iter
      (fun ev ->
        Metrics.Histogram.observe h per;
        respond t conn (stmt_reply s ev))
      events

(* Hand an epoch thunk to the worker pool and pause this connection
   until its completion is delivered. *)
let submit_epoch t worker s conn kind job =
  let ticket = Epoch_worker.submit worker job in
  Hashtbl.replace t.pending_epochs ticket
    { pe_session = s; pe_conn = conn; pe_kind = kind };
  conn.awaiting_epoch <- true;
  Metrics.Counter.incr m_epoch_offloaded

(* Dispatch a run of raw STMT sqls. With a worker pool the intake uses
   the async service API: a fired trigger becomes an off-thread epoch
   (the triggering statement's reply waits for it; the statements
   behind it go to [conn.replay]); without one the PR8 inline paths
   run unchanged. *)
let dispatch_stmt_run t conn sqls =
  match (t.worker, sqls) with
  | _, [] -> ()
  | None, [ sql ] ->
    (* Preserve the exact single-command path (same timing semantics)
       for unpipelined clients. *)
    dispatch_one t conn ("STMT " ^ sql)
  | None, sqls -> dispatch_stmt_batch t conn sqls
  | Some worker, sqls -> (
    match conn.session with
    | None ->
      let n = List.length sqls in
      t.commands_served <- t.commands_served + n;
      Metrics.Counter.add m_commands n;
      List.iter (fun _ -> respond t conn no_tenant_reply) sqls
    | Some s ->
      let h = List.assoc "stmt" m_command_seconds in
      let (events, trigger, leftover), elapsed =
        Im_util.Stopwatch.time (fun () ->
            Service.feed_batch_async s.s_service sqls)
      in
      let applied =
        List.length events + (match trigger with Some _ -> 1 | None -> 0)
      in
      t.commands_served <- t.commands_served + applied;
      Metrics.Counter.add m_commands applied;
      Metrics.Counter.add s.s_commands applied;
      let per =
        if applied = 0 then 0. else elapsed /. float_of_int applied
      in
      List.iter
        (fun ev ->
          Metrics.Histogram.observe h per;
          respond t conn (stmt_reply s ev))
        events;
      match trigger with
      | None -> ()
      | Some trig ->
        let job = Service.begin_epoch s.s_service trig in
        conn.replay <- leftover @ conn.replay;
        submit_epoch t worker s conn `Stmt job)

(* Dispatch up to [min !budget cap] lines on one connection,
   decrementing the session's shared [budget]. Contiguous STMT runs go
   through the batch path; an EPOCH verb offloads (or stalls behind
   the tenant's in-flight epoch). *)
let dispatch_conn t conn budget ~cap =
  let turn = ref (min !budget cap) in
  let spend n =
    turn := !turn - n;
    budget := !budget - n
  in
  let continue = ref true in
  while !continue && !turn > 0 && t.running && has_dispatch_work conn do
    if conn.replay <> [] then begin
      (* Statements handed back when a trigger split their batch:
         they re-feed under their pre-assigned ids, ahead of anything
         newly read. *)
      let rec take n l =
        if n = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: rest ->
            let a, b = take (n - 1) rest in
            (x :: a, b)
      in
      let now, later = take !turn conn.replay in
      conn.replay <- later;
      spend (List.length now);
      dispatch_stmt_run t conn now
    end
    else
      match stmt_sql (Queue.peek conn.pending) with
      | Some _ ->
        (* Gather the whole contiguous STMT run within this turn. *)
        let sqls = ref [] in
        let gathering = ref true in
        while !gathering && !turn > 0 && not (Queue.is_empty conn.pending) do
          match stmt_sql (Queue.peek conn.pending) with
          | Some sql ->
            ignore (Queue.pop conn.pending);
            spend 1;
            sqls := sql :: !sqls
          | None -> gathering := false
        done;
        dispatch_stmt_run t conn (List.rev !sqls)
      | None -> (
        let line = Queue.peek conn.pending in
        let verb, _ = split_verb line in
        match t.worker with
        | Some worker when String.uppercase_ascii verb = "EPOCH" -> (
          match conn.session with
          | None ->
            ignore (Queue.pop conn.pending);
            spend 1;
            t.commands_served <- t.commands_served + 1;
            Metrics.Counter.incr m_commands;
            respond t conn no_tenant_reply
          | Some s when Service.epoch_in_flight s.s_service ->
            (* The line stays queued: it re-dispatches after this
               tenant's in-flight epoch commits. No budget spent. *)
            conn.stalled <- true;
            continue := false
          | Some s -> (
            ignore (Queue.pop conn.pending);
            spend 1;
            t.commands_served <- t.commands_served + 1;
            Metrics.Counter.incr m_commands;
            Metrics.Counter.incr s.s_commands;
            match Service.begin_forced_epoch s.s_service with
            | Error msg -> respond t conn ("ERR " ^ msg)
            | Ok job -> submit_epoch t worker s conn `Forced job))
        | _ ->
          ignore (Queue.pop conn.pending);
          spend 1;
          dispatch_one t conn line)
  done;
  if not conn.closed then begin
    flush_out t conn;
    maybe_close_drained t conn;
    sync_interest t conn
  end;
  note_backlog t conn

(* Spend one session's round budget (weight x base) across its
   connections, round-robin in bounded turns so a single pipelining
   connection cannot drain the whole tenant budget first. *)
let dispatch_session t s conns =
  let budget = ref (commands_per_round * s.s_weight) in
  let single = match conns with [ _ ] -> true | _ -> false in
  let progress = ref true in
  while !budget > 0 && !progress && t.running do
    progress := false;
    List.iter
      (fun conn ->
        if !budget > 0 && has_dispatch_work conn then begin
          let before = !budget in
          let cap = if single then !budget else commands_per_turn in
          dispatch_conn t conn budget ~cap;
          if !budget < before then progress := true
        end)
      conns
  done;
  if !budget = 0 && List.exists has_dispatch_work conns then
    Metrics.Counter.incr m_fairness_deferred

(* One fairness round over every connection with dispatchable work:
   group by session, rotate the session order, give each session its
   weighted budget. Unbound connections (tenant dropped) share the
   base budget each. *)
let dispatch_round t =
  if Hashtbl.length t.backlog > 0 then begin
    let groups : (string, session * conn list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let unbound = ref [] in
    Hashtbl.iter
      (fun _ conn ->
        if has_dispatch_work conn then
          match conn.session with
          | Some s -> (
            match Hashtbl.find_opt groups s.s_name with
            | Some (_, l) -> l := conn :: !l
            | None -> Hashtbl.replace groups s.s_name (s, ref [ conn ]))
          | None -> unbound := conn :: !unbound)
      t.backlog;
    let names =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
    in
    let nnames = List.length names in
    let names =
      if nnames <= 1 then names
      else begin
        (* Rotate who goes first so equal-weight tenants alternate. *)
        let k = t.rr_cursor mod nnames in
        let rec rot i l =
          if i = 0 then l
          else match l with [] -> [] | x :: rest -> rot (i - 1) (rest @ [ x ])
        in
        rot k names
      end
    in
    t.rr_cursor <- t.rr_cursor + 1;
    List.iter
      (fun name ->
        if t.running then begin
          let s, conns = Hashtbl.find groups name in
          dispatch_session t s (List.rev !conns)
        end)
      names;
    List.iter
      (fun conn ->
        if t.running && has_dispatch_work conn then begin
          let budget = ref commands_per_round in
          dispatch_conn t conn budget ~cap:commands_per_round
        end)
      (List.rev !unbound)
  end

(* ---- Epoch completions ---- *)

(* Land one off-thread epoch on the dispatch thread: commit (or abort)
   the service state, answer the connection that asked, and unstall
   any of the tenant's connections queued behind the in-flight mark.
   The reply text matches the inline paths byte for byte. *)
let handle_completion t (c : Epoch_worker.completion) =
  match Hashtbl.find_opt t.pending_epochs c.Epoch_worker.c_id with
  | None -> ()
  | Some pe ->
    Hashtbl.remove t.pending_epochs c.Epoch_worker.c_id;
    let s = pe.pe_session in
    let reply =
      match c.Epoch_worker.c_result with
      | Ok o ->
        let (), commit_s =
          Im_util.Stopwatch.time (fun () ->
              Service.commit_epoch s.s_service o)
        in
        Metrics.Gauge.add m_dispatch_stall commit_s;
        Metrics.Counter.incr s.s_epochs;
        let verb = match pe.pe_kind with `Stmt -> "stmt" | `Forced -> "epoch" in
        Metrics.Histogram.observe
          (List.assoc verb m_command_seconds)
          o.Epoch.e_elapsed_s;
        (match pe.pe_kind with
         | `Stmt -> "OK observed " ^ epoch_line o
         | `Forced -> "OK " ^ epoch_line o)
      | Error e ->
        Service.abort_epoch s.s_service;
        "ERR epoch failed: " ^ Printexc.to_string e
    in
    let conn = pe.pe_conn in
    conn.awaiting_epoch <- false;
    if not conn.closed then begin
      conn.last_active <- Im_util.Stopwatch.now_s ();
      respond t conn reply;
      flush_out t conn;
      maybe_close_drained t conn;
      sync_interest t conn;
      note_backlog t conn
    end;
    Hashtbl.iter
      (fun _ c ->
        if
          c.stalled
          && (match c.session with Some s' -> s' == s | None -> false)
        then begin
          c.stalled <- false;
          note_backlog t c
        end)
      t.conns

(* ---- Reading ---- *)

(* Move complete lines from [conn.buf] to [conn.pending]. Scans from an
   advancing offset and compacts the buffer once: a pipelined batch of
   N commands costs O(bytes). *)
let extract_lines conn =
  let s = Buffer.contents conn.buf in
  let len = String.length s in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt s !pos '\n' with
    | None -> continue := false
    | Some i ->
      let line = String.sub s !pos (i - !pos) in
      pos := i + 1;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Queue.push (String.trim line) conn.pending
  done;
  Buffer.clear conn.buf;
  if !pos < len then Buffer.add_substring conn.buf s !pos (len - !pos)

let read_chunk t conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 4096 with
  | 0 ->
    (* Half close: the peer promises no more input. Answer what it
       already pipelined, drain the replies, then close — closing here
       discarded every queued reply. *)
    conn.eof <- true;
    extract_lines conn;
    Buffer.clear conn.buf;  (* a partial line can never complete now *)
    maybe_close_drained t conn
  | n ->
    conn.last_active <- Im_util.Stopwatch.now_s ();
    Metrics.Counter.add m_bytes_in n;
    Buffer.add_subbytes conn.buf bytes 0 n;
    extract_lines conn;
    if Buffer.length conn.buf > max_line_bytes then begin
      (* A single line this long is abuse, not SQL: diagnose, count,
         and close once the error (and nothing else) drains. *)
      Metrics.Counter.incr m_overlong;
      Buffer.clear conn.buf;
      Queue.clear conn.pending;
      respond t conn "ERR line too long";
      conn.closing <- true;
      flush_out t conn;
      maybe_close_drained t conn
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn t conn

(* ---- Accepting ---- *)

let overload_msg = "ERR too many connections\n"
let tenant_overload_msg = "ERR too many connections for tenant\n"

(* Best-effort reject: the fd is nonblocking *before* the write, so a
   connect-and-never-read client cannot stall the accept loop; a
   partial or failed write is ignored. *)
let reject_fd fd msg =
  Metrics.Counter.incr m_rejected;
  (try ignore (Unix.write_substring fd msg 0 (String.length msg))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t fd =
  Unix.set_nonblock fd;
  if Hashtbl.length t.conns >= t.max_connections then reject_fd fd overload_msg
  else begin
    let session = Hashtbl.find_opt t.sessions t.default_tenant in
    let tenant_full =
      match session with
      | Some s -> s.s_conns >= t.max_tenant_connections
      | None -> false
    in
    if tenant_full then reject_fd fd tenant_overload_msg
    else
      match Evloop.add t.ev fd ~read:true ~write:false with
      | exception Invalid_argument _ ->
        (* Select backend: fd beyond FD_SETSIZE. The connection count
           cap normally prevents this; a racing burst lands here. *)
        reject_fd fd overload_msg
      | () ->
        t.connections_served <- t.connections_served + 1;
        let conn =
          {
            fd;
            buf = Buffer.create 256;
            pending = Queue.create ();
            out = { oq = Queue.create (); oq_head = 0; oq_bytes = 0 };
            session = None;
            last_active = Im_util.Stopwatch.now_s ();
            closing = false;
            eof = false;
            closed = false;
            awaiting_epoch = false;
            stalled = false;
            replay = [];
          }
        in
        (match session with
         | Some s ->
           s.s_conns <- s.s_conns + 1;
           Metrics.Gauge.set_int s.s_live s.s_conns;
           conn.session <- Some s
         | None -> ());
        Hashtbl.replace t.conns fd conn;
        Metrics.Gauge.set_int m_live (Hashtbl.length t.conns)
  end

(* Accept every connection the kernel has queued, not one per loop
   round: a burst of N connects previously took N rounds. Bounded so a
   connect flood cannot starve established connections either. *)
let accept_burst t =
  let accepted = ref 0 in
  let continue = ref true in
  while !continue && !accepted < 1024 do
    match Unix.accept t.listener with
    | fd, _addr ->
      incr accepted;
      admit t fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      ()
  done;
  if float_of_int !accepted > Metrics.Gauge.value m_accept_burst then
    Metrics.Gauge.set_int m_accept_burst !accepted

(* ---- Reaping ---- *)

(* Throttled to twice a second — it walks every connection. A
   connection owed an off-thread epoch reply (or queued behind one) is
   never reaped: its idleness is the daemon's doing, and its reply is
   still coming. *)
let reap_idle t =
  let now = Im_util.Stopwatch.now_s () in
  if now -. t.last_reap >= 0.5 then begin
    t.last_reap <- now;
    let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter
      (fun conn ->
        if
          (not conn.closed) && (not conn.awaiting_epoch)
          && (not conn.stalled)
          && now -. conn.last_active > t.read_timeout
        then begin
          (* Give queued replies a last chance to leave before dropping
             the connection. *)
          flush_out t conn;
          if not conn.closed then
            if
              conn.out.oq_bytes = 0
              (* Pending output on a still-writable socket means the
                 main loop will drain it next round; reap only sockets
                 that stopped accepting bytes. The probe goes through
                 poll(2), which works on any fd number. *)
              || not (Evloop.writable conn.fd)
            then begin
              Metrics.Counter.incr m_reaped;
              close_conn t conn
            end
        end)
      snapshot
  end

(* ---- Event loop ---- *)

let drain_wake t =
  let bytes = Bytes.create 256 in
  let continue = ref true in
  while !continue do
    match Unix.read t.wake_r bytes 0 256 with
    | 0 -> continue := false
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let serve t =
  t.running <- true;
  Unix.set_nonblock t.listener;
  while t.running do
    (* Undispatched work (fairness-deferred or newly read) re-polls
       with a zero timeout; paused connections are not in the backlog,
       so a long off-thread epoch leaves the loop blocking idle. *)
    let timeout_s = if Hashtbl.length t.backlog > 0 then 0.0 else 1.0 in
    let events = Evloop.wait t.ev ~timeout_s in
    let listener_ready = ref false in
    let wake_ready = ref false in
    let ready =
      List.filter_map
        (fun ev ->
          let fd = ev.Evloop.ev_fd in
          if fd = t.listener then begin
            if ev.Evloop.ev_read then listener_ready := true;
            None
          end
          else if fd = t.wake_r then begin
            wake_ready := true;
            None
          end
          else
            (* Handlers may close connections mid-round; the table is
               the source of truth for who is still alive. *)
            match Hashtbl.find_opt t.conns fd with
            | Some conn -> Some (conn, ev)
            | None -> None)
        events
    in
    if !listener_ready then accept_burst t;
    if !wake_ready then drain_wake t;
    List.iter
      (fun (conn, ev) ->
        if ev.Evloop.ev_write && (not conn.closed) && conn.out.oq_bytes > 0
        then begin
          flush_out t conn;
          maybe_close_drained t conn;
          sync_interest t conn
        end)
      ready;
    List.iter
      (fun (conn, ev) ->
        (* Epoll and poll report HUP/ERR regardless of the interest
           mask: gate on the interest the server actually holds so a
           paused connection is not read early. *)
        if
          ev.Evloop.ev_read && (not conn.closed) && (not conn.closing)
          && (not conn.eof)
          && Queue.length conn.pending < max_pending_lines
        then begin
          read_chunk t conn;
          sync_interest t conn;
          note_backlog t conn
        end)
      ready;
    (match t.worker with
     | Some w -> List.iter (handle_completion t) (Epoch_worker.drain w)
     | None -> ());
    dispatch_round t;
    reap_idle t
  done;
  (* Graceful shutdown: finish in-flight epochs (their replies are
     owed), best-effort flush, then close everything. *)
  (match t.worker with
   | Some w ->
     Epoch_worker.shutdown w;
     List.iter (handle_completion t) (Epoch_worker.drain w)
   | None -> ());
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun conn -> flush_out t conn) remaining;
  List.iter
    (fun conn ->
      if not conn.closed then begin
        conn.closed <- true;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)
    remaining;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.backlog;
  Hashtbl.reset t.pending_epochs;
  Metrics.Gauge.set_int m_live 0;
  Evloop.close t.ev;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  try Unix.close t.listener with Unix.Unix_error _ -> ()
