module Database = Im_catalog.Database
module Index = Im_catalog.Index

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable last_active : float;
  mutable closing : bool;  (* close after pending output drains *)
  mutable out : string;  (* unsent response bytes *)
}

type t = {
  service : Service.t;
  listener : Unix.file_descr;
  bound_port : int;
  read_timeout : float;
  max_connections : int;
  mutable conns : conn list;
  mutable running : bool;
  mutable connections_served : int;
  mutable commands_served : int;
}

let create ?(host = "127.0.0.1") ?(port = 0) ?(read_timeout = 30.)
    ?(max_connections = 64) service =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listener 16;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  {
    service;
    listener;
    bound_port;
    read_timeout;
    max_connections;
    conns = [];
    running = false;
    connections_served = 0;
    commands_served = 0;
  }

let port t = t.bound_port
let shutdown t = t.running <- false
let connections_served t = t.connections_served
let commands_served t = t.commands_served

(* ---- Protocol ---- *)

let stats_line service =
  Service.stats service
  |> List.map (fun (k, v) ->
         let k =
           String.map (fun c -> if c = ' ' then '_' else c)
             (match String.index_opt k '(' with
              | Some i -> String.trim (String.sub k 0 i)
              | None -> k)
         in
         let v = String.map (fun c -> if c = ' ' then '_' else c) v in
         k ^ "=" ^ v)
  |> String.concat " "

let epoch_line (o : Epoch.outcome) =
  Printf.sprintf
    "epoch trigger=%s diff=%s pages=%d->%d cost=%.1f->%.1f benefit=%.3f \
     clusters=%d/%d opt_calls=%d"
    (Epoch.trigger_to_string o.Epoch.e_trigger)
    (Epoch.diff_to_string o.Epoch.e_diff)
    o.Epoch.e_old_pages o.Epoch.e_new_pages o.Epoch.e_old_cost
    o.Epoch.e_new_cost o.Epoch.e_benefit o.Epoch.e_clusters_tuned
    o.Epoch.e_budget_clusters o.Epoch.e_opt_calls

(* Returns the response plus whether the daemon should stop / the
   connection should close. *)
let handle_command t line =
  let verb, rest =
    match String.index_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  match (String.uppercase_ascii verb, rest) with
  | "STMT", "" -> (`Reply "ERR empty statement", `Keep)
  | "STMT", sql ->
    (match Service.feed t.service sql with
     | Service.Rejected msg -> (`Reply ("ERR " ^ msg), `Keep)
     | Service.Observed { ev_epoch = Some o; _ } ->
       (`Reply ("OK observed " ^ epoch_line o), `Keep)
     | Service.Observed { ev_drift = Some v; _ } ->
       ( `Reply
           (Printf.sprintf "OK observed drift=%.3f regression=%.3f fired=%b"
              v.Drift.v_divergence v.Drift.v_regression v.Drift.v_fired),
         `Keep )
     | Service.Observed _ -> (`Reply "OK observed", `Keep))
  | "STATS", _ -> (`Reply ("OK " ^ stats_line t.service), `Keep)
  | "CONFIG", _ ->
    let db = Service.database t.service in
    let config = Service.config t.service in
    let lines =
      List.map
        (fun ix ->
          Printf.sprintf "%s %d" (Index.to_string ix) (Database.index_pages db ix))
        config
    in
    ( `Reply
        (String.concat "\n" (Printf.sprintf "OK %d" (List.length lines) :: lines)),
      `Keep )
  | "EPOCH", _ ->
    (match Service.force_epoch t.service with
     | Ok o -> (`Reply ("OK " ^ epoch_line o), `Keep)
     | Error msg -> (`Reply ("ERR " ^ msg), `Keep))
  | "QUIT", _ -> (`Reply "OK bye", `Close)
  | "SHUTDOWN", _ -> (`Reply "OK shutting down", `Stop)
  | "", _ -> (`Reply "ERR empty command", `Keep)
  | _ -> (`Reply "ERR unknown command", `Keep)

(* ---- Event loop ---- *)

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

let flush_out conn =
  if conn.out <> "" then begin
    let b = Bytes.of_string conn.out in
    match Unix.write conn.fd b 0 (Bytes.length b) with
    | n -> conn.out <- String.sub conn.out n (String.length conn.out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  end

let respond t conn reply =
  conn.out <- conn.out ^ reply ^ "\n";
  flush_out conn;
  if conn.out <> "" then ()
  else if conn.closing then close_conn t conn

(* Consume complete lines from the connection buffer. *)
let drain_lines t conn =
  let rec next () =
    let s = Buffer.contents conn.buf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear conn.buf;
      Buffer.add_string conn.buf (String.sub s (i + 1) (String.length s - i - 1));
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      t.commands_served <- t.commands_served + 1;
      let `Reply reply, action = handle_command t (String.trim line) in
      (match action with
       | `Keep -> respond t conn reply
       | `Close ->
         conn.closing <- true;
         respond t conn reply
       | `Stop ->
         conn.closing <- true;
         respond t conn reply;
         t.running <- false);
      if t.running && List.memq conn t.conns then next ()
  in
  next ()

let read_chunk t conn =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.fd bytes 0 4096 with
  | 0 -> close_conn t conn
  | n ->
    conn.last_active <- Unix.gettimeofday ();
    Buffer.add_subbytes conn.buf bytes 0 n;
    if Buffer.length conn.buf > 1_000_000 then begin
      (* a line this long is abuse, not SQL *)
      conn.out <- "";
      close_conn t conn
    end
    else drain_lines t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn t conn

let accept_conn t =
  match Unix.accept t.listener with
  | fd, _addr ->
    if List.length t.conns >= t.max_connections then begin
      (try
         ignore
           (Unix.write fd (Bytes.of_string "ERR too many connections\n") 0 25)
       with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      Unix.set_nonblock fd;
      t.connections_served <- t.connections_served + 1;
      t.conns <-
        {
          fd;
          buf = Buffer.create 256;
          last_active = Unix.gettimeofday ();
          closing = false;
          out = "";
        }
        :: t.conns
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let reap_idle t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun conn ->
      if now -. conn.last_active > t.read_timeout then close_conn t conn)
    t.conns

let serve t =
  t.running <- true;
  Unix.set_nonblock t.listener;
  while t.running do
    let reads = t.listener :: List.map (fun c -> c.fd) t.conns in
    let writes =
      List.filter_map
        (fun c -> if c.out <> "" then Some c.fd else None)
        t.conns
    in
    match Unix.select reads writes [] 1.0 with
    | readable, writable, _ ->
      if List.mem t.listener readable then accept_conn t;
      (* Handlers may close connections mid-iteration: work on a
         snapshot and recheck membership before touching each fd. *)
      let snapshot = t.conns in
      List.iter
        (fun conn ->
          if List.memq conn t.conns && List.mem conn.fd writable then begin
            flush_out conn;
            if conn.out = "" && conn.closing then close_conn t conn
          end)
        snapshot;
      List.iter
        (fun conn ->
          if List.memq conn t.conns && List.mem conn.fd readable then
            read_chunk t conn)
        snapshot;
      reap_idle t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful shutdown: best-effort flush, then close everything. *)
  List.iter (fun conn -> flush_out conn) t.conns;
  List.iter (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- [];
  try Unix.close t.listener with Unix.Unix_error _ -> ()
