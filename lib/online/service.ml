module Database = Im_catalog.Database
module Config = Im_catalog.Config
module Parser = Im_sqlir.Parser
module Workload = Im_workload.Workload

let m_statements = Im_obs.Metrics.counter "online_statements_total"
let m_window_clusters = Im_obs.Metrics.gauge "online_window_clusters"

type options = {
  o_budget_pages : int;
  o_capacity : int;
  o_decay : float;
  o_cluster_threshold : float;
  o_div_threshold : float;
  o_cost_threshold : float;
  o_check_every : int;
  o_warmup : int;
  o_min_clusters : int;
  o_max_clusters : int;
  o_initial_clusters : int;
  o_compress : float option;
  o_prune_support : float option;
}

let default_options ~budget_pages =
  {
    o_budget_pages = budget_pages;
    o_capacity = 48;
    o_decay = 0.995;
    o_cluster_threshold = 0.25;
    o_div_threshold = 0.35;
    o_cost_threshold = 0.30;
    o_check_every = 32;
    o_warmup = 24;
    o_min_clusters = 4;
    o_max_clusters = 64;
    o_initial_clusters = 16;
    o_compress = None;
    o_prune_support = None;
  }

type t = {
  db : Database.t;
  opts : options;
  pool : Im_par.Pool.t option;
  cache : Im_costsvc.Service.t;
  window : Window.t;
  drift : Drift.t;
  budget : Budget.t;
  mutable live : Config.t;
  mutable epochs : Epoch.outcome list;  (* most recent first *)
  mutable seq : int;  (* statement id counter *)
  mutable rejected : int;
  mutable feed_seconds : float;
  mutable epoch_seconds : float;
  (* An epoch snapshot is out on a worker domain and not yet
     committed. While set, drift checks and further triggers are
     suppressed and CONFIG/STATS keep answering from the last
     committed state. Only ever touched by the dispatch thread. *)
  mutable in_flight : bool;
}

let create ?options ?pool ?(initial = Config.empty) ?(derive = true) db
    ~budget_pages =
  let opts =
    match options with
    | Some o -> o
    | None -> default_options ~budget_pages
  in
  (* One lock stripe per evaluating domain (×4 against same-shard
     collisions) when epochs run on a pool. *)
  let shards =
    match pool with
    | Some p when Im_par.Pool.domain_count p > 0 ->
      4 * Im_par.Pool.domain_count p
    | Some _ | None -> 1
  in
  {
    db;
    opts;
    pool;
    cache =
      Im_costsvc.Service.create ~shards ~derive
        ~update_cost:(Im_merging.Maintenance.config_batch_cost db)
        db;
    window =
      Window.create ~capacity:opts.o_capacity ~decay:opts.o_decay
        ~threshold:opts.o_cluster_threshold ();
    drift =
      Drift.create ~div_threshold:opts.o_div_threshold
        ~cost_threshold:opts.o_cost_threshold
        ~match_threshold:opts.o_cluster_threshold ();
    budget =
      Budget.create ~min_clusters:opts.o_min_clusters
        ~max_clusters:opts.o_max_clusters ~initial:opts.o_initial_clusters ();
    live = initial;
    epochs = [];
    seq = 0;
    rejected = 0;
    feed_seconds = 0.;
    epoch_seconds = 0.;
    in_flight = false;
  }

type event =
  | Rejected of string
  | Observed of {
      ev_drift : Drift.verdict option;
      ev_epoch : Epoch.outcome option;
    }

(* ---- Epoch lifecycle: begin (snapshot) / run / commit ----

   [begin_epoch] marks the service in flight and closes the run over a
   snapshot of everything an epoch reads — the committed live config,
   an immutable window workload, and the current cluster budget — so
   the returned thunk is safe to execute on a worker domain while the
   dispatch thread keeps feeding this service (the warm what-if cache
   and the pool are domain-safe since PR 4). [commit_epoch] installs
   the result back on the dispatch thread; the inline [run_epoch] is
   begin + run + commit with no interleaving, which is exactly the
   pre-async behavior. *)

let epoch_in_flight t = t.in_flight

let begin_epoch t trigger =
  if t.in_flight then invalid_arg "Service.begin_epoch: epoch already in flight";
  t.in_flight <- true;
  let live = t.live in
  let window = Window.to_workload t.window in
  let max_clusters = Budget.current t.budget in
  fun () ->
    Epoch.run ?pool:t.pool ?compress:t.opts.o_compress
      ?prune_support:t.opts.o_prune_support t.cache ~trigger ~live ~window
      ~budget_pages:t.opts.o_budget_pages ~max_clusters

let commit_epoch t outcome =
  t.in_flight <- false;
  t.live <- outcome.Epoch.e_config;
  t.epochs <- outcome :: t.epochs;
  t.epoch_seconds <- t.epoch_seconds +. outcome.Epoch.e_elapsed_s;
  Budget.record t.budget ~benefit:outcome.Epoch.e_benefit;
  Drift.rebase t.drift t.cache t.live (Window.to_workload t.window)

let abort_epoch t = t.in_flight <- false

let run_epoch t trigger =
  let job = begin_epoch t trigger in
  match job () with
  | outcome ->
    commit_epoch t outcome;
    outcome
  | exception e ->
    abort_epoch t;
    raise e

(* What should happen after this statement: run a drift check now, and
   if so did it fire an epoch? Pure decision — running the epoch is the
   caller's business (inline below, offloaded in the daemon). While an
   epoch is in flight nothing further triggers: the check would compare
   against a baseline that is about to be rebased. *)
let tune_decision t =
  if t.in_flight then (None, None)
  else
    let n = Window.statements t.window in
    if not (Drift.has_baseline t.drift) then
      if n >= t.opts.o_warmup then (None, Some Epoch.Bootstrap) else (None, None)
    else if n mod t.opts.o_check_every = 0 then begin
      let verdict =
        Drift.check t.drift t.cache t.live (Window.to_workload t.window)
      in
      if verdict.Drift.v_fired then (Some verdict, Some Epoch.Drift)
      else (Some verdict, None)
    end
    else (None, None)

let maybe_tune t =
  let verdict, trigger = tune_decision t in
  (verdict, Option.map (run_epoch t) trigger)

(* Apply one already-parsed statement: the shared tail of [feed] and
   [feed_batch]. The caller has already advanced [t.seq] and counted
   the statement. *)
let apply_parsed t = function
  | Error msg ->
    t.rejected <- t.rejected + 1;
    Rejected msg
  | Ok q ->
    Window.observe t.window q;
    Im_obs.Metrics.Gauge.set_int m_window_clusters
      (Window.cluster_count t.window);
    let ev_drift, ev_epoch = maybe_tune t in
    Observed { ev_drift; ev_epoch }

let feed t sql =
  let event, elapsed =
    Im_util.Stopwatch.time (fun () ->
        t.seq <- t.seq + 1;
        Im_obs.Metrics.Counter.incr m_statements;
        let id = Printf.sprintf "S%d" t.seq in
        apply_parsed t
          (Parser.parse_query ~schema:(Database.schema t.db) ~id sql))
  in
  t.feed_seconds <- t.feed_seconds +. elapsed;
  event

(* Batched intake: parsing is pure in (schema, id, sql), so a pipelined
   run of statements parses on the pool (cost-aware chunks via
   [Pool.Batcher]) before the window/drift/epoch state machine applies
   each result sequentially. Statement ids are pre-assigned in arrival
   order, so the events — and therefore a daemon's replies — are
   identical to feeding one statement at a time. *)
let parse_batcher = Im_par.Pool.Batcher.create ~name:"serve_parse" ()

let feed_batch t sqls =
  match sqls with
  | [] -> []
  | [ sql ] -> [ feed t sql ]
  | sqls ->
    let events, elapsed =
      Im_util.Stopwatch.time (fun () ->
          let schema = Database.schema t.db in
          let base = t.seq in
          let parse (i, sql) =
            Parser.parse_query ~schema
              ~id:(Printf.sprintf "S%d" (base + i + 1))
              sql
          in
          let numbered = List.mapi (fun i sql -> (i, sql)) sqls in
          let parsed =
            match t.pool with
            | Some pool when Im_par.Pool.domain_count pool > 0 ->
              Im_par.Pool.map_batched pool ~batcher:parse_batcher parse
                numbered
            | Some _ | None -> List.map parse numbered
          in
          List.map
            (fun res ->
              t.seq <- t.seq + 1;
              Im_obs.Metrics.Counter.incr m_statements;
              apply_parsed t res)
            parsed)
    in
    t.feed_seconds <- t.feed_seconds +. elapsed;
    events

(* ---- Async intake: observe, decide, never run the epoch ----

   The daemon's offloaded path. Same window/drift state machine as
   [apply_parsed], but a fired trigger is returned instead of run, and
   the triggering statement's event is withheld: its reply depends on
   the epoch outcome, which the caller delivers after commit. *)

let apply_parsed_async t = function
  | Error msg ->
    t.rejected <- t.rejected + 1;
    (Rejected msg, None)
  | Ok q ->
    Window.observe t.window q;
    Im_obs.Metrics.Gauge.set_int m_window_clusters
      (Window.cluster_count t.window);
    let ev_drift, trigger = tune_decision t in
    (Observed { ev_drift; ev_epoch = None }, trigger)

let feed_async t sql =
  let result, elapsed =
    Im_util.Stopwatch.time (fun () ->
        t.seq <- t.seq + 1;
        Im_obs.Metrics.Counter.incr m_statements;
        let id = Printf.sprintf "S%d" t.seq in
        apply_parsed_async t
          (Parser.parse_query ~schema:(Database.schema t.db) ~id sql))
  in
  t.feed_seconds <- t.feed_seconds +. elapsed;
  result

(* Batched async intake. Parses like [feed_batch] (pooled, ids
   pre-assigned in arrival order) and applies results sequentially
   until a statement fires a trigger; that statement is fed (window
   observed, [seq] advanced) but produces no event, and the unapplied
   raw statements after it are handed back for the caller to replay
   once the epoch commits. Replayed text re-parses under the same ids
   ([seq] only advanced past applied statements), so the event stream
   is identical to the inline path statement for statement. *)
let feed_batch_async t sqls =
  let (events, trigger, leftover), elapsed =
    Im_util.Stopwatch.time (fun () ->
        let schema = Database.schema t.db in
        let base = t.seq in
        let parse (i, sql) =
          Parser.parse_query ~schema
            ~id:(Printf.sprintf "S%d" (base + i + 1))
            sql
        in
        let numbered = List.mapi (fun i sql -> (i, sql)) sqls in
        let parsed =
          match t.pool with
          | Some pool
            when Im_par.Pool.domain_count pool > 0 && List.length sqls > 1 ->
            Im_par.Pool.map_batched pool ~batcher:parse_batcher parse numbered
          | Some _ | None -> List.map parse numbered
        in
        let rec apply acc parsed raw =
          match (parsed, raw) with
          | [], _ -> (List.rev acc, None, raw)
          | res :: ptl, _ :: rtl -> (
            t.seq <- t.seq + 1;
            Im_obs.Metrics.Counter.incr m_statements;
            match apply_parsed_async t res with
            | ev, None -> apply (ev :: acc) ptl rtl
            | _, Some trigger -> (List.rev acc, Some trigger, rtl))
          | _ :: _, [] -> assert false
        in
        apply [] parsed sqls)
  in
  t.feed_seconds <- t.feed_seconds +. elapsed;
  (events, trigger, leftover)

let force_epoch t =
  if Window.cluster_count t.window = 0 then Error "window is empty"
  else Ok (run_epoch t Epoch.Forced)

let begin_forced_epoch t =
  if Window.cluster_count t.window = 0 then Error "window is empty"
  else Ok (begin_epoch t Epoch.Forced)

let config t = t.live
let config_pages t = Database.config_storage_pages t.db t.live
let database t = t.db
let window t = t.window
let epochs t = t.epochs
let statements t = t.seq
let rejected t = t.rejected

let count_trigger t trig =
  List.length
    (List.filter (fun (o : Epoch.outcome) -> o.Epoch.e_trigger = trig) t.epochs)

let stats t =
  let i = string_of_int in
  let f2 = Im_util.Ascii_table.f2 in
  let observed = t.seq - t.rejected in
  (* Compactor figures from the most recent compressed epoch; "-" while
     compression is off or no epoch has run yet. *)
  let last_scale =
    List.find_map (fun (o : Epoch.outcome) -> o.Epoch.e_scale) t.epochs
  in
  let scale_row f = match last_scale with None -> "-" | Some st -> f st in
  [
    ("statements", i t.seq);
    ("parse rejects", i t.rejected);
    ("window clusters", Printf.sprintf "%d/%d" (Window.cluster_count t.window)
       (Window.capacity t.window));
    ("window mass", f2 (Window.total_mass t.window));
    ("window evictions", i (Window.evictions t.window));
    ("drift checks", i (Drift.checks t.drift));
    ("drift fires", i (Drift.fires t.drift));
    ("epochs (bootstrap/drift/forced)",
     Printf.sprintf "%d/%d/%d"
       (count_trigger t Epoch.Bootstrap)
       (count_trigger t Epoch.Drift)
       (count_trigger t Epoch.Forced));
    ("epoch cluster budget", i (Budget.current t.budget));
    ( "scale buckets",
      scale_row (fun st -> i st.Im_scale.Scale.st_buckets) );
    ( "scale fold ratio",
      scale_row (fun st -> f2 (Im_scale.Scale.fold_ratio st)) );
    ( "scale bound eps",
      scale_row (fun st ->
          Printf.sprintf "%.4g of %g" st.Im_scale.Scale.st_eps_bound
            st.Im_scale.Scale.st_eps_budget) );
    ( "mine pruned/kept pairs",
      match List.find_map (fun (o : Epoch.outcome) -> o.Epoch.e_mine) t.epochs
      with
      | None -> "-"
      | Some st ->
        Printf.sprintf "%d/%d (support %g)" st.Im_mine.Mine.fs_pruned
          st.Im_mine.Mine.fs_kept st.Im_mine.Mine.fs_support );
    ("cost_evals", i (Im_costsvc.Service.cost_evals t.cache));
    ("opt_calls", i (Im_costsvc.Service.opt_calls t.cache));
    ("cache_hits", i (Im_costsvc.Service.hits t.cache));
    ("cache_misses", i (Im_costsvc.Service.misses t.cache));
    ("cache_evictions", i (Im_costsvc.Service.evictions t.cache));
    ("cache_entries", i (Im_costsvc.Service.size t.cache));
    ("config indexes", i (List.length t.live));
    ("config pages", i (config_pages t));
    ("intake seconds", f2 t.feed_seconds);
    ("tuning seconds", f2 t.epoch_seconds);
    ( "mean intake ms/stmt",
      if observed = 0 then "-"
      else
        (* forced epochs run outside [feed], so clamp at 0 *)
        f2 (1000. *. Float.max 0. (t.feed_seconds -. t.epoch_seconds)
            /. float_of_int observed) );
  ]

let render_stats t =
  Im_util.Ascii_table.render ~header:[ "metric"; "value" ]
    ~rows:(List.map (fun (k, v) -> [ k; v ]) (stats t))
