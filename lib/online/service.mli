(** The online index-tuning service: the observe → summarize → re-tune →
    apply loop, independent of any transport.

    Statements are parsed one at a time into the sliding {!Window}.
    Every [check_every] statements the service consults the {!Drift}
    detector; before any baseline exists it instead runs a {e bootstrap}
    epoch as soon as the window holds [warmup] statements. A fired check
    (or an explicit {!force_epoch}) runs an {!Epoch} under the current
    {!Budget} allocation, installs the new configuration, records the
    realized benefit for Wii-style budget reallocation, and rebases the
    drift detector on the window just tuned for.

    All cost evaluation flows through one {!Im_costsvc.Service} that
    lives as long as the service — the warm what-if cache carried
    across epochs. *)

type options = {
  o_budget_pages : int;  (** storage budget for every epoch's advisor run *)
  o_capacity : int;  (** window cluster capacity *)
  o_decay : float;  (** per-statement frequency decay *)
  o_cluster_threshold : float;  (** window leader-clustering distance *)
  o_div_threshold : float;  (** drift: total-variation trigger *)
  o_cost_threshold : float;  (** drift: relative cost-regression trigger *)
  o_check_every : int;  (** statements between drift checks *)
  o_warmup : int;  (** statements before the bootstrap epoch *)
  o_min_clusters : int;  (** epoch budget floor *)
  o_max_clusters : int;  (** epoch budget ceiling *)
  o_initial_clusters : int;  (** epoch budget start *)
  o_compress : float option;
      (** when set, every epoch compresses its window snapshot through
          the {!Im_scale.Scale} compactor at this deviation budget
          before tuning ([--compress EPS] on [serve]) *)
  o_prune_support : float option;
      (** when set (> 0), every epoch re-mines its window's frequent
          itemsets and prunes the advisor's merge enumeration at this
          relative support ([--prune-support S] on [serve]) *)
}

val default_options : budget_pages:int -> options
(** Capacity 48, decay 0.995, cluster threshold 0.25, divergence 0.35,
    cost regression 0.30, check every 32, warmup 24, cluster budget
    4..64 starting at 16, compression and frontier pruning off. *)

type t

val create :
  ?options:options ->
  ?pool:Im_par.Pool.t ->
  ?initial:Im_catalog.Config.t ->
  ?derive:bool ->
  Im_catalog.Database.t ->
  budget_pages:int ->
  t
(** [?initial] (default empty) is the configuration live before the
    first epoch. [?options] overrides [default_options]; its
    [o_budget_pages] wins over the [~budget_pages] argument when
    given. [?pool] hands every epoch's full-window costings to an
    [Im_par] domain pool (and lock-stripes the warm what-if cache to
    match); costs are bit-identical to the sequential path. [?derive]
    (default true) attaches atomic cost derivation to the epoch-warm
    what-if cache, so drift checks and tuning epochs answer misses
    from cached access-path atoms — same costs, fewer optimizer runs
    ([--no-derive] on [serve] turns it off). *)

type event =
  | Rejected of string  (** statement did not parse / validate *)
  | Observed of {
      ev_drift : Drift.verdict option;  (** when a check ran *)
      ev_epoch : Epoch.outcome option;  (** when an epoch ran *)
    }

val feed : t -> string -> event
(** Ingest one SQL statement (text, trailing [';'] allowed). *)

val feed_batch : t -> string list -> event list
(** Ingest a pipelined run of statements. Parsing is pure in
    (schema, pre-assigned id, text), so when the service owns a
    {!Im_par.Pool} with workers the batch parses on the pool in
    cost-sized chunks ({!Im_par.Pool.Batcher}, site [serve_parse])
    before each result is applied to the window/drift/epoch state
    machine in arrival order. Events are identical to calling {!feed}
    once per statement, at any pool size — the daemon batches
    pipelined [STMT] runs through this. *)

val force_epoch : t -> (Epoch.outcome, string) result
(** Run an epoch now; [Error] on an empty window. *)

(** {2 Off-thread epochs}

    The daemon's offloaded tuning path. [begin_*] marks the service
    {e in flight} and returns a thunk closed over a snapshot of
    everything the epoch reads (committed config, immutable window
    workload, cluster budget); the thunk is safe to run on a worker
    domain while the dispatch thread keeps feeding this service. While
    in flight, drift checks and further triggers are suppressed and
    [config]/[stats] answer from the last committed state. The
    [_async] intake variants return a fired {!Epoch.trigger} instead
    of running it inline. [commit_epoch]/[abort_epoch] must be called
    from the dispatch thread. *)

val epoch_in_flight : t -> bool

val begin_epoch : t -> Epoch.trigger -> unit -> Epoch.outcome
(** Raises [Invalid_argument] if an epoch is already in flight. *)

val begin_forced_epoch : t -> (unit -> Epoch.outcome, string) result
(** [begin_epoch t Forced]; [Error] on an empty window. *)

val commit_epoch : t -> Epoch.outcome -> unit
(** Install a completed epoch: set the live config, record the realized
    benefit for budget reallocation, rebase drift on the current
    window, clear the in-flight mark. *)

val abort_epoch : t -> unit
(** Clear the in-flight mark after a failed epoch, leaving the
    committed state untouched. *)

val feed_async : t -> string -> event * Epoch.trigger option
(** Like {!feed}, but a fired trigger is returned, not run; the
    returned event never carries [ev_epoch]. *)

val feed_batch_async :
  t -> string list -> event list * Epoch.trigger option * string list
(** Like {!feed_batch} until the first statement that fires a trigger:
    that statement is fed (window observed, id assigned) but produces
    no event — its reply depends on the epoch outcome — and the raw
    statements after it are returned unapplied for the caller to
    replay after [commit_epoch] (they re-parse under the same
    pre-assigned ids, so the event stream matches the inline path
    statement for statement). *)

val config : t -> Im_catalog.Config.t
val config_pages : t -> int
val database : t -> Im_catalog.Database.t
val window : t -> Window.t
val epochs : t -> Epoch.outcome list
(** Most recent first. *)

val statements : t -> int
val rejected : t -> int

val stats : t -> (string * string) list
(** Ordered counter/latency metrics: statements, parse rejects, window
    occupancy and mass, drift checks/fires, epochs by trigger, the cost
    service's unified counters ([cost_evals], [opt_calls],
    [cache_hits], [cache_misses], [cache_evictions], [cache_entries]),
    configuration size/pages, intake latency. With [o_compress] set the
    list also carries the most recent epoch's compactor figures
    ([scale buckets], [scale fold ratio], [scale bound eps]; ["-"]
    until a compressed epoch has run). *)

val render_stats : t -> string
(** {!stats} as an aligned two-column ASCII table. *)
