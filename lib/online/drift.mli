(** Workload-drift detection between tuning epochs.

    After each epoch the detector {!rebase}s on the window it was tuned
    for: it stores the window's normalized signature distribution and
    its per-unit-mass what-if cost under the configuration the epoch
    installed. A later {!check} fires when either

    - {b divergence}: the total-variation distance between the current
      window's signature distribution and the baseline's exceeds
      [div_threshold]. Distributions are compared by projecting both
      onto the baseline's signature buckets (nearest leader within
      [match_threshold]; anything further lands in an "other" bucket),
      so renamed ids and changed constants do not register as drift but
      genuinely new query shapes do; or
    - {b cost regression}: the current window's per-unit-mass cost under
      the {e live} configuration exceeds the baseline unit cost by more
      than [cost_threshold] — traffic the installed indexes no longer
      serve well, even if its shape mix looks similar.

    Cost is evaluated through the shared {!Im_costsvc.Service}, so
    steady traffic makes checks nearly free. *)

type t

type verdict = {
  v_divergence : float;  (** total-variation distance in [0, 1] *)
  v_regression : float;  (** relative unit-cost increase; 0 when negative *)
  v_fired : bool;
  v_reason : string;  (** "divergence", "cost", "divergence+cost" or "-" *)
}

val create :
  ?div_threshold:float ->
  ?cost_threshold:float ->
  ?match_threshold:float ->
  unit ->
  t
(** Defaults: [div_threshold = 0.35], [cost_threshold = 0.30],
    [match_threshold = 0.25] (aligned with the window's clustering
    threshold). *)

val has_baseline : t -> bool
(** False until the first {!rebase}; {!check} never fires without a
    baseline (the bootstrap epoch is the service's job). *)

val rebase :
  t ->
  Im_costsvc.Service.t ->
  Im_catalog.Config.t ->
  Im_workload.Workload.t ->
  unit
(** [rebase t service config window] records [window]'s signature
    distribution and unit cost under [config] as the new baseline. *)

val check :
  t ->
  Im_costsvc.Service.t ->
  Im_catalog.Config.t ->
  Im_workload.Workload.t ->
  verdict
(** Compare the current window against the baseline; returns an unfired
    verdict with zero divergence when no baseline exists. *)

val checks : t -> int
val fires : t -> int
