(** Warm what-if cost cache carried across tuning epochs.

    {!Im_merging.Cost_eval} keys its per-query cache by query {e id},
    which is perfect inside one batch search but useless for a stream:
    every arriving statement gets a fresh id, so textually identical
    queries would miss forever. This cache keys by
    {!Im_sqlir.Query.canonical_string} (id-independent) plus the
    configuration restricted to the query's tables — the paper's
    "only relevant queries need re-optimization" rule — so drift checks
    and epoch before/after costings hit the cache across epochs as long
    as neither the query shape nor the relevant indexes changed. *)

type t

val create : ?max_entries:int -> Im_catalog.Database.t -> t
(** [max_entries] (default 8192) bounds the table; when exceeded the
    cache is cleared rather than grown — the stream must not leak. *)

val database : t -> Im_catalog.Database.t

val query_cost : t -> Im_catalog.Config.t -> Im_sqlir.Query.t -> float
(** What-if optimizer cost of the query under the configuration. *)

val workload_cost : t -> Im_catalog.Config.t -> Im_workload.Workload.t -> float
(** Frequency-weighted query costs plus batch-insert maintenance when
    the workload carries an update profile. *)

val optimizer_calls : t -> int
(** Cache misses — what-if optimizations that actually ran. *)

val hits : t -> int

val size : t -> int
(** Live entries (for memory-cap assertions). *)
