module Database = Im_catalog.Database
module Config = Im_catalog.Config
module Index = Im_catalog.Index
module Query = Im_sqlir.Query
module Workload = Im_workload.Workload

type t = {
  db : Database.t;
  max_entries : int;
  cache : (string, float) Hashtbl.t;
  mutable misses : int;
  mutable hits : int;
}

let create ?(max_entries = 8192) db =
  { db; max_entries; cache = Hashtbl.create 256; misses = 0; hits = 0 }

let database t = t.db

(* Key: canonical query text (id-independent) + the configuration
   restricted to the query's tables, so index changes on other tables
   leave cached costs valid. *)
let key q config =
  let relevant =
    List.filter (fun ix -> List.mem ix.Index.idx_table q.Query.q_tables) config
  in
  let names =
    List.sort String.compare
      (List.map
         (fun ix ->
           ix.Index.idx_table ^ ":" ^ String.concat "," ix.Index.idx_columns)
         relevant)
  in
  Query.canonical_string q ^ "|" ^ String.concat ";" names

let query_cost t config q =
  let k = key q config in
  match Hashtbl.find_opt t.cache k with
  | Some c ->
    t.hits <- t.hits + 1;
    c
  | None ->
    t.misses <- t.misses + 1;
    if Hashtbl.length t.cache >= t.max_entries then Hashtbl.reset t.cache;
    let c = Im_optimizer.Plan.cost (Im_optimizer.Optimizer.optimize t.db config q) in
    Hashtbl.replace t.cache k c;
    c

let workload_cost t config w =
  let query_cost = Workload.weighted_cost ~cost:(query_cost t config) w in
  let update_cost =
    match w.Workload.updates with
    | [] -> 0.
    | inserts -> Im_merging.Maintenance.config_batch_cost t.db config ~inserts
  in
  query_cost +. update_cost

let optimizer_calls t = t.misses
let hits t = t.hits
let size t = Hashtbl.length t.cache
