(** Dedicated worker domains for off-thread epoch re-merges.

    Jobs are the thunks produced by {!Service.begin_epoch}: closed over
    an immutable snapshot, safe to run on any domain. Completions
    accumulate until the owner {!drain}s them (the daemon does so each
    event-loop wake-up); every completion fires [wakeup] so a loop
    blocked in the readiness layer notices immediately — typically a
    nonblocking write to a self-pipe registered with the loop. *)

type t

type completion = {
  c_id : int;  (** the {!submit} ticket this result answers *)
  c_result : (Epoch.outcome, exn) result;
      (** [Error] carries an exception raised by the epoch; the
          submitting service must {!Service.abort_epoch}. *)
}

val create : workers:int -> wakeup:(unit -> unit) -> t
(** Spawns [workers] (≥ 1) domains. [wakeup] runs on a worker domain
    after each completion; it must be domain-safe and non-blocking, and
    its exceptions are swallowed. *)

val submit : t -> (unit -> Epoch.outcome) -> int
(** Enqueue a job; returns the ticket its completion will carry.
    Raises [Invalid_argument] after {!shutdown}. *)

val drain : t -> completion list
(** All completions since the last drain, oldest first. *)

val shutdown : t -> unit
(** Stop accepting work, finish queued jobs, join the domains.
    Completions of those final jobs remain drainable. *)
