(** Per-epoch tuning budget with benefit-driven reallocation.

    Wii-style (dynamic budget reallocation in index tuning): instead of
    spending a fixed optimizer-invocation budget every epoch, the
    allocation adapts to the realized benefit of the previous epoch. The
    budget is denominated in {e workload clusters re-tuned per epoch} —
    what-if optimizer invocations scale linearly with the clusters
    handed to the advisor, so capping clusters caps invocations.

    Rule: an epoch that realized relative benefit ≥ [grow_above] doubles
    the next allocation (drift is paying off — look wider); one that
    realized < [shrink_below] halves it (the configuration is already
    good — stop burning optimizer calls); anything between keeps the
    allocation. Always clamped to [[min_clusters, max_clusters]]. *)

type t

val create :
  ?min_clusters:int ->
  ?max_clusters:int ->
  ?initial:int ->
  ?grow_above:float ->
  ?shrink_below:float ->
  unit ->
  t
(** Defaults: min 4, max 64, initial 16, grow above 5 % benefit, shrink
    below 1 %. *)

val current : t -> int
(** Clusters the next epoch may re-tune. *)

val record : t -> benefit:float -> unit
(** Report the just-finished epoch's realized relative benefit
    ([(old - new) / old] window cost) and reallocate. *)

val epochs : t -> int
(** Epochs recorded. *)
