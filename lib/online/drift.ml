module Compress = Im_workload.Compress
module Workload = Im_workload.Workload

type baseline = {
  b_buckets : (Compress.signature * float) list;  (** normalized shares *)
  b_unit_cost : float;
}

type verdict = {
  v_divergence : float;
  v_regression : float;
  v_fired : bool;
  v_reason : string;
}

let m_checks = Im_obs.Metrics.counter "online_drift_checks_total"
let m_fires = Im_obs.Metrics.counter "online_drift_fires_total"

type t = {
  div_threshold : float;
  cost_threshold : float;
  match_threshold : float;
  mutable baseline : baseline option;
  mutable checks : int;
  mutable fires : int;
}

let create ?(div_threshold = 0.35) ?(cost_threshold = 0.30)
    ?(match_threshold = 0.25) () =
  {
    div_threshold;
    cost_threshold;
    match_threshold;
    baseline = None;
    checks = 0;
    fires = 0;
  }

let has_baseline t = t.baseline <> None

let distribution (w : Workload.t) =
  let total = Workload.total_freq w in
  if total <= 0. then []
  else
    List.map
      (fun (e : Workload.entry) ->
        (Compress.signature e.Workload.query, e.Workload.freq /. total))
      w.Workload.entries

(* Project [dist] onto [buckets]: each entry's share goes to the nearest
   bucket within [match_threshold], the remainder to an implicit "other"
   bucket. Returns (per-bucket shares, other share). *)
let project t buckets dist =
  let shares = Array.make (List.length buckets) 0. in
  let other = ref 0. in
  List.iter
    (fun (sg, share) ->
      let best = ref (-1) and best_d = ref infinity in
      List.iteri
        (fun i (bsg, _) ->
          let d = Compress.distance sg bsg in
          if d < !best_d then begin
            best_d := d;
            best := i
          end)
        buckets;
      if !best >= 0 && !best_d <= t.match_threshold then
        shares.(!best) <- shares.(!best) +. share
      else other := !other +. share)
    dist;
  (shares, !other)

let total_variation t buckets current =
  let q, q_other = project t buckets current in
  let sum = ref q_other in
  (* baseline "other" share is 0 by construction *)
  List.iteri
    (fun i (_, p) -> sum := !sum +. Float.abs (p -. q.(i)))
    buckets;
  0.5 *. !sum

let unit_cost service config w =
  let mass = Workload.total_freq w in
  if mass <= 0. then 0.
  else Im_costsvc.Service.workload_cost service config w /. mass

let rebase t service config window =
  t.baseline <-
    Some
      {
        b_buckets = distribution window;
        b_unit_cost = unit_cost service config window;
      }

let check t service config window =
  t.checks <- t.checks + 1;
  Im_obs.Metrics.Counter.incr m_checks;
  match t.baseline with
  | None ->
    { v_divergence = 0.; v_regression = 0.; v_fired = false; v_reason = "-" }
  | Some b ->
    let divergence = total_variation t b.b_buckets (distribution window) in
    let regression =
      if b.b_unit_cost <= 0. then 0.
      else
        Float.max 0. ((unit_cost service config window /. b.b_unit_cost) -. 1.)
    in
    let div_fired = divergence > t.div_threshold in
    let cost_fired = regression > t.cost_threshold in
    let fired = div_fired || cost_fired in
    if fired then begin
      t.fires <- t.fires + 1;
      Im_obs.Metrics.Counter.incr m_fires
    end;
    {
      v_divergence = divergence;
      v_regression = regression;
      v_fired = fired;
      v_reason =
        (match (div_fired, cost_fired) with
         | true, true -> "divergence+cost"
         | true, false -> "divergence"
         | false, true -> "cost"
         | false, false -> "-");
    }

let checks t = t.checks
let fires t = t.fires
