(** One tuning epoch: re-run the budgeted advisor on the current window
    and express the result as a diff against the live configuration.

    The window snapshot is compressed (exact-signature dedup — the
    window already clustered loosely) and truncated Wii-style to the
    budget's cluster allowance, keeping the clusters that are most
    expensive under the live configuration — re-tuning effort goes where
    the current indexes hurt most. {!Im_advisor.Advisor.advise} then
    produces a fresh configuration under the storage budget, and the
    epoch reports it as create/drop/keep sets rather than a full
    configuration: a live system applies DDL deltas, not wholesale
    rebuilds. *)

type diff = {
  d_create : Im_catalog.Index.t list;  (** in new, not in live *)
  d_drop : Im_catalog.Index.t list;  (** in live, not in new *)
  d_keep : Im_catalog.Index.t list;  (** unchanged *)
}

val diff : old_config:Im_catalog.Config.t -> new_config:Im_catalog.Config.t -> diff

val diff_is_empty : diff -> bool

val diff_to_string : diff -> string
(** e.g. ["+2 -3 =4"]. *)

type trigger = Bootstrap | Drift | Forced

val trigger_to_string : trigger -> string

type outcome = {
  e_trigger : trigger;
  e_clusters_tuned : int;  (** clusters handed to the advisor *)
  e_budget_clusters : int;  (** allocation the epoch ran under *)
  e_diff : diff;
  e_config : Im_catalog.Config.t;  (** the new live configuration *)
  e_old_cost : float;  (** window cost under the previous configuration *)
  e_new_cost : float;
  e_benefit : float;  (** [(old - new) / old], 0 when old is 0 *)
  e_old_pages : int;
  e_new_pages : int;
  e_opt_calls : int;  (** optimizer invocations spent by this epoch *)
  e_elapsed_s : float;
  e_scale : Im_scale.Scale.stats option;
      (** compactor stats when [?compress] was given *)
  e_mine : Im_mine.Mine.stats option;
      (** frontier-pruning tallies when [?prune_support] was given *)
}

val run :
  ?pool:Im_par.Pool.t ->
  ?compress:float ->
  ?prune_support:float ->
  Im_costsvc.Service.t ->
  trigger:trigger ->
  live:Im_catalog.Config.t ->
  window:Im_workload.Workload.t ->
  budget_pages:int ->
  max_clusters:int ->
  outcome
(** Raises [Invalid_argument] on an empty window. The service is the
    warm cost cache carried across epochs; [e_opt_calls] is the per-run
    delta of its optimizer-call counter (advisor phases and window
    costings included). [?pool] runs the full-window costings' per-query
    what-ifs on the pool's domains (bit-identical costs — see
    {!Im_costsvc.Service.workload_cost}).

    [?compress] replaces the exact-signature dedup with the
    {!Im_scale.Scale} compactor at deviation budget [EPS]: the window
    snapshot streams through it once, tuning and both window costings
    run over the compressed window, and the costings are answered from
    cached access-path atoms in one batched traversal — fanned onto
    [?pool] too ({!Im_scale.Scale.score}'s flat-table fill; scores
    bit-identical at any domain count). [e_old_cost]/[e_new_cost] then
    refer to the compressed window, within the bound in [e_scale].

    [?prune_support] re-mines the window's frequent itemsets each
    epoch — through the compactor at admission time when [?compress] is
    also on — and hands the frontier to the advisor, so a
    drift-triggered epoch prunes its merge enumeration against the
    {e current} window masses: a cheap candidate refresh instead of the
    full quadratic frontier. [S <= 0] is a no-op. *)

val summary : outcome -> string
