(** TCP advisor daemon: a single-threaded [Unix.select] loop exposing a
    {!Service} over a line protocol.

    Requests are newline-terminated; responses are one [OK ...] or
    [ERR ...] line, except [CONFIG] whose [OK <n>] line is followed by
    [n] index lines. Commands (case-insensitive verb):

    {v
    STMT <sql>    ingest one statement; OK observed [epoch=...] | ERR <why>
    STATS         OK k=v k=v ...          (counters, single line)
    CONFIG        OK <n> + n lines "<index> <pages>"
    EPOCH         force a tuning epoch; OK epoch ... | ERR <why>
    METRICS       OK <n> + n lines from the process metrics registry
                  (stable [Im_obs.Metrics.dump] order)
    QUIT          OK bye, close this connection
    SHUTDOWN      OK shutting down, stop the whole daemon
    v}

    Connections idle longer than [read_timeout] seconds are reaped
    (after a best-effort flush of queued replies; a connection with
    pending output on a still-writable socket is left to drain); a
    half-received line survives across reads (per-connection buffers).
    Idle tracking uses the monotonic clock, so wall-clock jumps never
    mass-disconnect clients. A peer that disconnects before reading
    its reply costs only that connection ([EPIPE]/[ECONNRESET] on
    write is counted in [server_write_errors_total], never raised out
    of the loop). Everything runs on one thread — intake, drift checks
    and epochs execute inline in the event loop, which is exactly the
    paper-scale deployment shape (one advisor per server) and keeps
    the service state free of locks. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?read_timeout:float ->
  ?max_connections:int ->
  Service.t ->
  t
(** Binds and listens immediately. Defaults: host ["127.0.0.1"],
    [port = 0] (ephemeral — read the bound port back with {!port}),
    [read_timeout = 30.], [max_connections = 64]. Raises [Unix_error]
    when binding fails. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val serve : t -> unit
(** Run the event loop until a client issues [SHUTDOWN] or {!shutdown}
    is called from a signal handler. Closes all sockets before
    returning. *)

val shutdown : t -> unit
(** Request a graceful stop; safe to call from a signal handler. *)

val connections_served : t -> int
val commands_served : t -> int
