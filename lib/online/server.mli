(** Multi-tenant TCP advisor daemon: a single dispatch thread on a
    pluggable readiness layer ({!Im_evloop.Evloop} — epoll on Linux,
    poll elsewhere, select kept for portability tests) exposing one
    {!Service} per tenant over a line protocol. Epoch re-merges run
    on dedicated worker domains so a multi-hundred-millisecond tuning
    pass never stalls the other tenants' statements.

    Requests are newline-terminated; responses are one [OK ...] or
    [ERR ...] line, except [CONFIG]/[METRICS]/[TENANT LIST] whose
    [OK <n>] line is followed by [n] detail lines. Commands
    (case-insensitive verb):

    {v
    STMT <sql>             ingest one statement; OK observed ... | ERR <why>
    STATS                  OK k=v k=v ...       (tenant counters, one line)
    CONFIG                 OK <n> + n lines "<index> <pages>"
    EPOCH                  force a tuning epoch; OK epoch ... | ERR <why>
    METRICS                OK <n> + n lines from the process metrics
                           registry (stable [Im_obs.Metrics.dump] order)
    TENANT LIST            OK <n> + n lines
                           "<name> conns= statements= epochs= weight="
    TENANT CREATE <n> [db] create a tenant (session built by the factory)
    TENANT USE <n>         bind this connection to tenant <n>
    TENANT DROP <n>        evict tenant <n>; its connections are unbound
    QUIT                   OK bye, close this connection
    SHUTDOWN               OK shutting down, stop the whole daemon
    v}

    Every connection is bound to the default tenant on accept, so
    sessions that never issue a TENANT verb behave exactly like the
    single-tenant daemon. [STMT]/[STATS]/[CONFIG]/[EPOCH] dispatch
    through the connection's bound session; after its tenant is
    dropped they answer [ERR no tenant bound] until a [TENANT USE].

    Admission control: a global connection cap and a per-tenant cap
    (checked on accept against the default tenant and on [TENANT
    USE]); rejected connections get a best-effort [ERR too many
    connections] on a nonblocking fd. Output is a per-connection
    byte-capped queue — when a slow reader's queue would exceed
    [max_output_bytes] the overflowing reply is dropped, the
    connection is marked closing (it drains what was queued, then
    closes) and [server_backpressure_closed_total] is counted.

    Fairness: all queued connects are accepted per loop round (not
    one), and dispatch budgets are per {e tenant}, not per connection
    — each session gets [128 x weight] commands per round (weights via
    [?weights], default 1), shared round-robin across its connections,
    so one pipelining tenant cannot starve accepts or other tenants.
    Rounds with undispatched input re-poll with a zero timeout;
    budget-exhausted rounds count [server_fairness_deferred_total].
    Contiguous pipelined [STMT] runs parse on the service's [Im_par]
    pool via {!Service.feed_batch}; epoch re-merges fan their costings
    onto the same pool.

    Off-thread epochs ([epoch_workers > 0], the default): a fired
    trigger or [EPOCH] verb snapshots the service
    ({!Service.begin_epoch}) and runs on a worker domain; the
    triggering connection waits for exactly that reply (its remaining
    pipeline replays afterwards under the same statement ids, so the
    reply stream is byte-identical to the inline path) while every
    other connection — same tenant included — keeps dispatching
    against the last committed configuration. A concurrent [EPOCH] on
    the same tenant queues behind the in-flight one. Offloads count in
    [server_epoch_offloaded_total]; the dispatch thread's cumulative
    epoch stall (full duration inline, commit-only when offloaded) is
    [server_dispatch_stall_seconds]. [epoch_workers = 0] restores the
    inline single-threaded behavior exactly.

    Connections idle longer than [read_timeout] seconds are reaped
    (after a best-effort flush of queued replies; a connection with
    pending output on a still-writable socket is left to drain, and
    one owed an off-thread epoch reply is never reaped); a
    half-received line survives across reads. A peer that half-closes
    ([shutdown(SHUT_WR)]) after pipelining commands still receives
    every queued reply: EOF stops intake but the pending commands are
    answered and the output queue drains before the close. A peer that
    disconnects before reading its reply costs only that connection
    ([EPIPE]/[ECONNRESET] on write is counted in
    [server_write_errors_total], never raised out of the loop). A
    single line over 1 MB answers [ERR line too long] (counted in
    [server_overlong_lines_total]) and closes after the error drains.

    Per-tenant observability ([im_obs], labelled [{tenant="..."}]):
    [server_tenant_connections_live], [server_tenant_commands_total],
    [server_tenant_epochs_total]; process-wide:
    [server_backpressure_closed_total], [server_overlong_lines_total],
    [server_out_queue_max_bytes] (high-water),
    [server_accept_burst_max], [server_tenants], plus the per-verb
    latency histograms and byte counters of the single-tenant daemon. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?read_timeout:float ->
  ?max_connections:int ->
  ?max_tenant_connections:int ->
  ?max_output_bytes:int ->
  ?tenant:string ->
  ?tenants:(string * Service.t) list ->
  ?weights:(string * int) list ->
  ?factory:(string -> (Service.t, string) result) ->
  ?event_backend:Im_evloop.Evloop.backend ->
  ?epoch_workers:int ->
  Service.t ->
  t
(** Binds and listens immediately. Defaults: host ["127.0.0.1"],
    [port = 0] (ephemeral — read the bound port back with {!port}),
    [read_timeout = 30.], [max_connections = 64],
    [max_tenant_connections = max_connections] (values [<= 0] mean the
    same), [max_output_bytes = 1_048_576], [tenant = "default"] (the
    name of the session owning the given service, bound to every new
    connection), [tenants = []] (extra pre-created sessions),
    [weights = []] (fairness weights by tenant name; missing or [< 1]
    means 1), [factory] answering [Error] (so [TENANT CREATE] is off
    unless one is provided — it receives the [db] spec, defaulting to
    the tenant name), [event_backend = Auto] (epoll where available,
    else poll; [Select] keeps the historical [Unix.select] loop and
    caps admissible fds at FD_SETSIZE), [epoch_workers = 1] (worker
    domains for off-thread epochs; [0] runs every epoch inline on the
    dispatch thread). Tenant names are restricted to
    [[A-Za-z0-9_.-]{1,64}] because they become metric label values;
    invalid or duplicate names raise [Invalid_argument]. Raises
    [Unix_error] when binding fails, [Failure] when [event_backend =
    Epoll] is unavailable on this platform. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val event_backend : t -> string
(** The resolved readiness backend: ["epoll"], ["poll"] or
    ["select"]. *)

val serve : t -> unit
(** Run the event loop until a client issues [SHUTDOWN] or {!shutdown}
    is called from a signal handler. Closes all sockets before
    returning. *)

val shutdown : t -> unit
(** Request a graceful stop; safe to call from a signal handler. *)

val tenants : t -> string list
(** Live tenant names, sorted. *)

val connections_served : t -> int
val commands_served : t -> int
