(** Sliding workload window for streaming intake.

    Arriving statements are leader-clustered online by their
    physical-design signature ({!Im_workload.Compress}): a statement
    whose signature lies within [threshold] of an existing cluster
    leader adds its mass there, otherwise it founds a new cluster.
    Before each arrival every cluster's frequency is multiplied by
    [decay], so the window is an exponentially-weighted sliding window
    over the stream: total mass converges to [1 / (1 - decay)] and old
    traffic fades instead of accumulating. The cluster count is capped
    at [capacity]; when a new leader would exceed it, the
    lightest cluster is evicted. Memory is therefore O(capacity)
    regardless of stream length. *)

type cluster = {
  cl_query : Im_sqlir.Query.t;  (** the leader — first query of the cluster *)
  cl_freq : float;  (** decayed mass *)
  cl_hits : int;  (** statements absorbed, undecayed *)
}

type t

val create : ?capacity:int -> ?decay:float -> ?threshold:float -> unit -> t
(** Defaults: [capacity = 48] clusters, [decay = 0.995] (half-life of
    ~139 statements), [threshold = 0.25] — looser than batch
    compression's exact-signature default because a stream repeats
    near-identical shapes with varying constants and column subsets. *)

val observe : t -> Im_sqlir.Query.t -> unit

val clusters : t -> cluster list
(** Heaviest first. *)

val to_workload : ?name:string -> t -> Im_workload.Workload.t
(** Snapshot of the window as a weighted workload (cluster leaders with
    their decayed masses). *)

val statements : t -> int
(** Statements observed over the window's lifetime. *)

val cluster_count : t -> int
val evictions : t -> int
val total_mass : t -> float
val capacity : t -> int
