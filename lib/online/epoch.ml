module Database = Im_catalog.Database
module Config = Im_catalog.Config
module Index = Im_catalog.Index
module Workload = Im_workload.Workload
module Compress = Im_workload.Compress

type diff = {
  d_create : Index.t list;
  d_drop : Index.t list;
  d_keep : Index.t list;
}

let diff ~old_config ~new_config =
  {
    d_create =
      List.filter (fun ix -> not (Config.mem ix old_config)) new_config;
    d_drop = List.filter (fun ix -> not (Config.mem ix new_config)) old_config;
    d_keep = List.filter (fun ix -> Config.mem ix new_config) old_config;
  }

let diff_is_empty d = d.d_create = [] && d.d_drop = []

let diff_to_string d =
  Printf.sprintf "+%d -%d =%d" (List.length d.d_create) (List.length d.d_drop)
    (List.length d.d_keep)

type trigger = Bootstrap | Drift | Forced

let trigger_to_string = function
  | Bootstrap -> "bootstrap"
  | Drift -> "drift"
  | Forced -> "forced"

let m_epoch_metrics =
  List.map
    (fun trig ->
      let labels = [ ("trigger", trigger_to_string trig) ] in
      ( trig,
        ( Im_obs.Metrics.counter ~labels "online_epochs_total",
          Im_obs.Metrics.histogram ~labels "online_epoch_seconds" ) ))
    [ Bootstrap; Drift; Forced ]

type outcome = {
  e_trigger : trigger;
  e_clusters_tuned : int;
  e_budget_clusters : int;
  e_diff : diff;
  e_config : Config.t;
  e_old_cost : float;
  e_new_cost : float;
  e_benefit : float;
  e_old_pages : int;
  e_new_pages : int;
  e_opt_calls : int;
  e_elapsed_s : float;
  e_scale : Im_scale.Scale.stats option;
  e_mine : Im_mine.Mine.stats option;
}

(* Test/bench hook: IM_EPOCH_DELAY_MS injects a fixed sleep into every
   epoch, making "a slow epoch" reproducible — the off-thread dispatch
   isolation tests and the EXP-SERVE isolation phase depend on it. *)
let injected_delay_s =
  lazy
    (match Sys.getenv_opt "IM_EPOCH_DELAY_MS" with
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some ms when ms > 0 -> float_of_int ms /. 1000.
        | Some _ | None -> 0.)
    | None -> 0.)

let run ?pool ?compress ?prune_support service ~trigger ~live ~window
    ~budget_pages ~max_clusters =
  if Workload.size window = 0 then invalid_arg "Epoch.run: empty window";
  (let d = Lazy.force injected_delay_s in
   if d > 0. then Unix.sleepf d);
  let db = Im_costsvc.Service.database service in
  let calls_before = Im_costsvc.Service.opt_calls service in
  (* Re-mine every epoch: each window gets a fresh miner, so the
     frontier the advisor prunes with tracks the decayed window masses
     — a drift-triggered epoch gets a cheap candidate refresh instead
     of the full quadratic frontier. *)
  let miner =
    match prune_support with
    | Some s when s > 0. -> Some (Im_mine.Mine.create ())
    | _ -> None
  in
  let frontier () =
    match (miner, prune_support) with
    | Some m, Some s -> Some (Im_mine.Mine.frontier m ~support:s)
    | _ -> None
  in
  let (new_config, tuned, old_cost, new_cost, scale, mine), elapsed =
    Im_util.Stopwatch.time (fun () ->
        match compress with
        | Some eps ->
          (* Scale path: stream the window snapshot through the
             compactor once; tuning and both costings run over the
             compressed window, the costings answered from cached
             access-path atoms in a single batched traversal —
             fanned onto the pool ([Derive.Batch] is domain-safe;
             scores are bit-identical at any domain count). The miner
             rides the same stream at admission time. *)
          let compactor = Im_scale.Scale.create ~eps ?mine:miner service in
          Im_scale.Scale.observe_workload compactor window;
          let compressed = Im_scale.Scale.snapshot compactor in
          let prune = frontier () in
          let tuning =
            Workload.top_k_by_cost
              ~cost:(Im_costsvc.Service.query_cost service live)
              ~k:max_clusters compressed
          in
          let outcome =
            Im_advisor.Advisor.advise ~service ?prune db tuning ~budget_pages
          in
          let new_config = Im_advisor.Advisor.final_config outcome in
          let costs =
            Im_scale.Scale.score ?pool compactor [ live; new_config ]
          in
          ( new_config,
            Workload.size tuning,
            costs.(0),
            costs.(1),
            Some (Im_scale.Scale.stats compactor),
            Option.map Im_mine.Mine.frontier_stats prune )
        | None ->
          (* Exact-signature dedup, then spend the cluster budget on the
             entries costing most under the live configuration. *)
          Option.iter (fun m -> Im_mine.Mine.observe_workload m window) miner;
          let prune = frontier () in
          let compressed = Compress.compress window in
          let tuning =
            Workload.top_k_by_cost
              ~cost:(Im_costsvc.Service.query_cost service live)
              ~k:max_clusters compressed
          in
          let outcome =
            Im_advisor.Advisor.advise ~service ?prune db tuning ~budget_pages
          in
          let new_config = Im_advisor.Advisor.final_config outcome in
          (* Both costings run over the *full* window, through the warm
             service, so the benefit reflects all live traffic, not just
             the tuned clusters. These are the epoch's widest fan-outs —
             one independent what-if per window entry — so they take the
             pool. *)
          let old_cost =
            Im_costsvc.Service.workload_cost ?pool service live window
          in
          let new_cost =
            Im_costsvc.Service.workload_cost ?pool service new_config window
          in
          ( new_config,
            Workload.size tuning,
            old_cost,
            new_cost,
            None,
            Option.map Im_mine.Mine.frontier_stats prune ))
  in
  (match List.assoc_opt trigger m_epoch_metrics with
   | Some (c, h) ->
     Im_obs.Metrics.Counter.incr c;
     Im_obs.Metrics.Histogram.observe h elapsed
   | None -> ());
  {
    e_trigger = trigger;
    e_clusters_tuned = tuned;
    e_budget_clusters = max_clusters;
    e_diff = diff ~old_config:live ~new_config;
    e_config = new_config;
    e_old_cost = old_cost;
    e_new_cost = new_cost;
    e_benefit = (if old_cost <= 0. then 0. else (old_cost -. new_cost) /. old_cost);
    e_old_pages = Database.config_storage_pages db live;
    e_new_pages = Database.config_storage_pages db new_config;
    e_opt_calls = Im_costsvc.Service.opt_calls service - calls_before;
    e_elapsed_s = elapsed;
    e_scale = scale;
    e_mine = mine;
  }

let summary o =
  Printf.sprintf
    "epoch[%s]: %d/%d clusters, diff %s, pages %d -> %d, window cost %.1f -> \
     %.1f (benefit %.1f%%), %d optimizer calls, %.2fs%s"
    (trigger_to_string o.e_trigger)
    o.e_clusters_tuned o.e_budget_clusters (diff_to_string o.e_diff)
    o.e_old_pages o.e_new_pages o.e_old_cost o.e_new_cost
    (100. *. o.e_benefit) o.e_opt_calls o.e_elapsed_s
    (match o.e_scale with
     | None -> ""
     | Some st ->
       Printf.sprintf ", compressed %d -> %d statements (bound eps %.4g)"
         st.Im_scale.Scale.st_statements st.Im_scale.Scale.st_buckets
         st.Im_scale.Scale.st_eps_bound)
  ^
  match o.e_mine with
  | None -> ""
  | Some st ->
    Printf.sprintf ", pruned %d/%d pair candidates (support %g)"
      st.Im_mine.Mine.fs_pruned
      (st.Im_mine.Mine.fs_pruned + st.Im_mine.Mine.fs_kept)
      st.Im_mine.Mine.fs_support
