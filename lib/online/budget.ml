type t = {
  min_clusters : int;
  max_clusters : int;
  grow_above : float;
  shrink_below : float;
  mutable current : int;
  mutable epochs : int;
}

let create ?(min_clusters = 4) ?(max_clusters = 64) ?(initial = 16)
    ?(grow_above = 0.05) ?(shrink_below = 0.01) () =
  if min_clusters < 1 then invalid_arg "Budget.create: min_clusters < 1";
  if max_clusters < min_clusters then
    invalid_arg "Budget.create: max_clusters < min_clusters";
  {
    min_clusters;
    max_clusters;
    grow_above;
    shrink_below;
    current = max min_clusters (min initial max_clusters);
    epochs = 0;
  }

let current t = t.current

let clamp t n = max t.min_clusters (min n t.max_clusters)

let record t ~benefit =
  t.epochs <- t.epochs + 1;
  if benefit >= t.grow_above then t.current <- clamp t (t.current * 2)
  else if benefit < t.shrink_below then t.current <- clamp t (t.current / 2)

let epochs t = t.epochs
