(** Index definitions.

    An index is an ordered sequence of distinct columns of one table —
    the object the whole paper manipulates. Definitions are logical:
    they may be *hypothetical* ("what-if") and never materialized, and
    still be costed and sized (paper §3.5.3). *)

type t = private {
  idx_name : string;
  idx_table : string;
  idx_columns : string list;  (** ordered key columns, distinct *)
}

val make : ?name:string -> table:string -> string list -> t
(** [make ~table cols] with non-empty, duplicate-free [cols]. The
    default name encodes table and columns, so definition equality
    implies name equality. Raises [Invalid_argument] on empty or
    duplicated columns. *)

val equal : t -> t -> bool
(** Same table and same column sequence (order matters: the paper's
    Example 1 counts k! distinct mergings of k columns). *)

val compare : t -> t -> int

val intern : t -> int
(** Dense integer id of the definition, hash-consed on (table, column
    sequence): [intern a = intern b] iff [equal a b]. Ids are assigned
    on first use, never reused, and are process-global — two structurally
    equal definitions built independently share one id, so an id array
    is a collision-free cache key where concatenated name strings are
    not (column names may themselves contain separators). *)

val interned_definitions : unit -> int
(** Number of distinct definitions interned so far. *)

val same_columns : t -> t -> bool
(** Same table and same column *set* (order ignored). *)

val is_prefix_of : t -> t -> bool
(** [is_prefix_of a b]: [a]'s columns are a leading prefix of [b]'s
    (same table). An index-preserving merge of [a] and [b] then yields
    [b] exactly. *)

val covers : t -> string list -> bool
(** Does the index contain all the given columns (as a set)? The
    covering-index test of the paper's introduction. *)

val leading_column : t -> string

val key_width : Im_sqlir.Schema.t -> t -> int
(** Sum of the key columns' datatype widths. *)

val width_fraction_of_table : Im_sqlir.Schema.t -> t -> float
(** Key width over the base relation's row width — the quantity the
    No-Cost model thresholds with [f]. *)

val validate : Im_sqlir.Schema.t -> t -> (unit, string) result

val pp : Format.formatter -> t -> unit
val to_string : t -> string
