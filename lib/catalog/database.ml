module Schema = Im_sqlir.Schema
module Heap = Im_storage.Heap
module Bptree = Im_storage.Bptree

type t = {
  db_schema : Schema.t;
  heaps : (string, Heap.t) Hashtbl.t;
  stats_cache : (string * string, Im_stats.Column_stats.t) Hashtbl.t;
  stats_lock : Mutex.t;  (* guards stats_cache only *)
  materialized : (string, Bptree.t) Hashtbl.t;  (* keyed by index name *)
  mat_defs : (string, Index.t) Hashtbl.t;
  stats_seed : int;
  sample_threshold : int;
  sample_size : int;
}

let create ?(seed = 42) ?(sample_threshold = 20_000) ?(sample_size = 5_000)
    schema rows_by_table =
  (match Schema.validate schema with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Database.create: " ^ msg));
  let heaps = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Schema.table) ->
      let rows =
        match List.assoc_opt tbl.Schema.tbl_name rows_by_table with
        | Some rows -> rows
        | None -> []
      in
      Hashtbl.replace heaps tbl.Schema.tbl_name (Heap.of_rows tbl rows))
    schema.Schema.tables;
  {
    db_schema = schema;
    heaps;
    stats_cache = Hashtbl.create 64;
    stats_lock = Mutex.create ();
    materialized = Hashtbl.create 16;
    mat_defs = Hashtbl.create 16;
    stats_seed = seed;
    sample_threshold;
    sample_size;
  }

let schema t = t.db_schema

let heap t name =
  match Hashtbl.find_opt t.heaps name with
  | Some h -> h
  | None -> invalid_arg ("Database.heap: unknown table " ^ name)

let row_count t name = Heap.row_count (heap t name)

let table_pages t name = Heap.pages (heap t name)

let data_pages t =
  List.fold_left
    (fun acc (tbl : Schema.table) -> acc + table_pages t tbl.Schema.tbl_name)
    0 t.db_schema.Schema.tables

let stats t tbl col =
  let key = (tbl, col) in
  Mutex.lock t.stats_lock;
  let cached = Hashtbl.find_opt t.stats_cache key in
  Mutex.unlock t.stats_lock;
  match cached with
  | Some s -> s
  | None ->
    let h = heap t tbl in
    let values = Heap.column_values h col in
    let sample =
      if Heap.row_count h > t.sample_threshold then
        (* The sampling seed is derived from the column, not drawn from
           a shared mutable stream: histograms must not depend on the
           order in which columns are first touched, or parallel
           evaluation would see different stats than sequential. *)
        Some
          ( t.sample_size,
            Im_util.Rng.create (t.stats_seed + Hashtbl.hash key) )
      else None
    in
    let s = Im_stats.Column_stats.build ~table:tbl ~column:col ?sample values in
    (* The build runs outside the lock; a concurrent duplicate build
       produced an identical value (deterministic seed), but publish
       only the first so every caller shares one object. *)
    Mutex.lock t.stats_lock;
    let s =
      match Hashtbl.find_opt t.stats_cache key with
      | Some first -> first
      | None ->
        Hashtbl.replace t.stats_cache key s;
        s
    in
    Mutex.unlock t.stats_lock;
    s

let index_pages t ix =
  Config.index_pages t.db_schema ~row_count:(row_count t) ix

let config_storage_pages t config =
  Config.storage_pages t.db_schema ~row_count:(row_count t) config

let index_key t ix rid =
  Heap.project (heap t ix.Index.idx_table) rid ix.Index.idx_columns

let materialize t ix =
  match Hashtbl.find_opt t.materialized ix.Index.idx_name with
  | Some tree -> tree
  | None ->
    let h = heap t ix.Index.idx_table in
    let entries =
      Heap.fold h ~init:[] ~f:(fun acc rid _row ->
          (Heap.project h rid ix.Index.idx_columns, rid) :: acc)
    in
    let tree =
      Bptree.bulk_load ~key_width:(Index.key_width t.db_schema ix) entries
    in
    Hashtbl.replace t.materialized ix.Index.idx_name tree;
    Hashtbl.replace t.mat_defs ix.Index.idx_name ix;
    tree

let drop_materialized t ix =
  Hashtbl.remove t.materialized ix.Index.idx_name;
  Hashtbl.remove t.mat_defs ix.Index.idx_name

let invalidate_stats t tbl =
  Mutex.lock t.stats_lock;
  let keys =
    Hashtbl.fold
      (fun (tbl', col) _ acc -> if tbl' = tbl then (tbl', col) :: acc else acc)
      t.stats_cache []
  in
  List.iter (Hashtbl.remove t.stats_cache) keys;
  Mutex.unlock t.stats_lock

let insert_row t tbl row =
  let h = heap t tbl in
  let rid = Heap.append h row in
  Hashtbl.iter
    (fun name tree ->
      match Hashtbl.find_opt t.mat_defs name with
      | Some ix when ix.Index.idx_table = tbl ->
        Bptree.insert tree (index_key t ix rid) rid
      | Some _ | None -> ())
    t.materialized;
  invalidate_stats t tbl;
  rid
