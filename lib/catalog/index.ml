module Schema = Im_sqlir.Schema

type t = { idx_name : string; idx_table : string; idx_columns : string list }

let default_name table cols = "ix_" ^ table ^ "__" ^ String.concat "_" cols

let make ?name ~table cols =
  if cols = [] then invalid_arg "Index.make: no columns";
  if
    List.length (List.sort_uniq String.compare cols) <> List.length cols
  then invalid_arg "Index.make: duplicate columns";
  {
    idx_name = (match name with Some n -> n | None -> default_name table cols);
    idx_table = table;
    idx_columns = cols;
  }

let equal a b = a.idx_table = b.idx_table && a.idx_columns = b.idx_columns

(* Interned identity: dense ids hash-consed on (table, column sequence)
   — exactly the definition equality of [equal], names excluded. The
   table is global and append-only; ids are never reused, so an id is a
   stable, collision-free stand-in for the definition in cache keys.

   Domain safety: the mapping is published as an immutable map behind
   an [Atomic], so the hit path is a lock-free read of a snapshot;
   misses take the mutex and re-check before assigning the next dense
   id (double-checked insert). A Hashtbl would race under concurrent
   resize, a plain mutex would serialize every hot-path lookup. *)
module Intern_key = struct
  type t = string * string list

  let compare (ta, ca) (tb, cb) =
    match String.compare ta tb with
    | 0 -> Stdlib.compare ca cb
    | c -> c
end

module Intern_map = Map.Make (Intern_key)

let intern_lock = Mutex.create ()
let intern_map : int Intern_map.t Atomic.t = Atomic.make Intern_map.empty
let intern_count = Atomic.make 0

let intern t =
  let key = (t.idx_table, t.idx_columns) in
  match Intern_map.find_opt key (Atomic.get intern_map) with
  | Some id -> id
  | None ->
    Mutex.lock intern_lock;
    let m = Atomic.get intern_map in
    let id =
      match Intern_map.find_opt key m with
      | Some id -> id
      | None ->
        let id = Atomic.get intern_count in
        Atomic.set intern_map (Intern_map.add key id m);
        Atomic.incr intern_count;
        id
    in
    Mutex.unlock intern_lock;
    id

let interned_definitions () = Atomic.get intern_count

let compare a b =
  match String.compare a.idx_table b.idx_table with
  | 0 -> Stdlib.compare a.idx_columns b.idx_columns
  | c -> c

let same_columns a b =
  a.idx_table = b.idx_table
  && List.sort String.compare a.idx_columns
     = List.sort String.compare b.idx_columns

let is_prefix_of a b =
  a.idx_table = b.idx_table
  &&
  let rec prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> x = y && prefix xs' ys'
  in
  prefix a.idx_columns b.idx_columns

let covers t cols = List.for_all (fun c -> List.mem c t.idx_columns) cols

let leading_column t =
  match t.idx_columns with
  | c :: _ -> c
  | [] -> assert false (* make rejects empty column lists *)

let key_width schema t =
  Schema.columns_width (Schema.table schema t.idx_table) t.idx_columns

let width_fraction_of_table schema t =
  let tbl = Schema.table schema t.idx_table in
  float_of_int (Schema.columns_width tbl t.idx_columns)
  /. float_of_int (Schema.row_width tbl)

let validate schema t =
  if not (Schema.mem_table schema t.idx_table) then
    Error (Printf.sprintf "index %s: unknown table %S" t.idx_name t.idx_table)
  else begin
    let tbl = Schema.table schema t.idx_table in
    match
      List.find_opt
        (fun c ->
          match Schema.column tbl c with
          | (_ : Schema.column) -> false
          | exception Not_found -> true)
        t.idx_columns
    with
    | Some c ->
      Error
        (Printf.sprintf "index %s: unknown column %S on %S" t.idx_name c
           t.idx_table)
    | None -> Ok ()
  end

let to_string t =
  Printf.sprintf "%s(%s)" t.idx_table (String.concat ", " t.idx_columns)

let pp fmt t = Format.pp_print_string fmt (to_string t)
