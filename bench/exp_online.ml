(* EXP-ONLINE — the online tuning loop under workload drift.

   A Rags-style stream whose query mix shifts mid-stream: phase A is one
   seeded complex workload, phase B another (disjoint seed, therefore a
   different signature mix over the same database). The initial
   configuration is the per-query union for phase A — the "tune once,
   never again" operating point. The online service then ingests the
   full stream: it should bootstrap, stay quiet through phase A, detect
   the phase shift, and re-tune.

   Reported: one row per epoch (trigger, cluster budget, diff, pages,
   window cost, benefit, optimizer spend), then a final comparison of
   never-re-tuning vs the online loop on the end-of-stream window. *)

module Database = Im_catalog.Database
module Config = Im_catalog.Config
module Workload = Im_workload.Workload
module Query = Im_sqlir.Query
module Service = Im_online.Service
module Epoch = Im_online.Epoch
module Window = Im_online.Window
module Costsvc = Im_costsvc.Service
module Drift = Im_online.Drift

let stream_of db ~seed ~queries ~repeats =
  let w = Exp_common.complex_workload db ~n:queries ~seed in
  let sqls = List.map Query.to_sql (Workload.queries w) in
  (w, List.concat (List.init repeats (fun _ -> sqls)))

let run () =
  Exp_common.section "EXP-ONLINE online tuning under drift";
  let db = Lazy.force Exp_common.synthetic1 in
  let phase_a, stream_a = stream_of db ~seed:501 ~queries:12 ~repeats:14 in
  let _, stream_b = stream_of db ~seed:907 ~queries:12 ~repeats:14 in
  (* Never-re-tune baseline: per-query union for phase A. *)
  let initial = Im_tuning.Initial_config.per_query_union db phase_a in
  let initial_pages = Database.config_storage_pages db initial in
  let budget_pages = max 1 (initial_pages / 2) in
  let options =
    {
      (Service.default_options ~budget_pages) with
      Service.o_warmup = 24;
      o_check_every = 24;
      o_decay = 0.98;
    }
  in
  let svc = Service.create ~options ~initial db ~budget_pages in
  Printf.printf
    "initial (phase-A per-query union): %d indexes, %d pages; epoch storage \
     budget %d pages\n"
    (List.length initial) initial_pages budget_pages;
  Printf.printf "stream: %d phase-A statements, then %d phase-B statements\n"
    (List.length stream_a) (List.length stream_b);
  let shift_at = List.length stream_a in
  List.iteri
    (fun i sql ->
      if i = shift_at then
        Printf.printf "-- query mix shifts at statement %d --\n" i;
      match Service.feed svc sql with
      | Service.Rejected msg -> failwith ("statement rejected: " ^ msg)
      | Service.Observed _ -> ())
    (stream_a @ stream_b);
  let epochs = List.rev (Service.epochs svc) in
  Exp_common.print_table ~title:"Tuning epochs over the stream"
    ~header:
      [ "epoch"; "trigger"; "clusters"; "diff"; "pages"; "window cost";
        "benefit"; "opt calls" ]
    ~rows:
      (List.mapi
         (fun i (o : Epoch.outcome) ->
           [
             string_of_int (i + 1);
             Epoch.trigger_to_string o.Epoch.e_trigger;
             Printf.sprintf "%d/%d" o.Epoch.e_clusters_tuned
               o.Epoch.e_budget_clusters;
             Epoch.diff_to_string o.Epoch.e_diff;
             Printf.sprintf "%d->%d" o.Epoch.e_old_pages o.Epoch.e_new_pages;
             Printf.sprintf "%.0f->%.0f" o.Epoch.e_old_cost o.Epoch.e_new_cost;
             Exp_common.pct o.Epoch.e_benefit;
             string_of_int o.Epoch.e_opt_calls;
           ])
         epochs);
  (* Final comparison on the end-of-stream window (phase-B traffic). *)
  let final_window = Window.to_workload (Service.window svc) in
  let cache =
    Costsvc.create
      ~update_cost:(Im_merging.Maintenance.config_batch_cost db)
      db
  in
  let frozen_cost = Costsvc.workload_cost cache initial final_window in
  let online_config = Service.config svc in
  let online_cost = Costsvc.workload_cost cache online_config final_window in
  let online_pages = Service.config_pages svc in
  Exp_common.print_table ~title:"Never-re-tune vs online loop (final window)"
    ~header:[ "strategy"; "indexes"; "pages"; "final-window cost" ]
    ~rows:
      [
        [ "never re-tune (phase-A union)"; string_of_int (List.length initial);
          string_of_int initial_pages; Printf.sprintf "%.0f" frozen_cost ];
        [ "online loop"; string_of_int (List.length online_config);
          string_of_int online_pages; Printf.sprintf "%.0f" online_cost ];
      ];
  let drift_epochs =
    List.length
      (List.filter (fun o -> o.Epoch.e_trigger = Epoch.Drift) epochs)
  in
  Printf.printf
    "\ndrift epochs: %d; storage %d -> %d pages (%s saved); budget respected: \
     %b; cost %.0f -> %.0f on the final window\n"
    drift_epochs initial_pages online_pages
    (Exp_common.pct (1. -. (float_of_int online_pages /. float_of_int initial_pages)))
    (online_pages <= budget_pages)
    frozen_cost online_cost;
  print_endline "\nService metrics:";
  print_endline (Service.render_stats svc);
  (* The claims EXPERIMENTS.md repeats; fail loudly if a change breaks
     them. *)
  assert (drift_epochs >= 1);
  assert (List.exists (fun o -> not (Epoch.diff_is_empty o.Epoch.e_diff)) epochs);
  assert (online_pages <= budget_pages);
  assert (online_pages < initial_pages)
