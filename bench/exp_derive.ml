(* EXP-DERIVE — atomic cost derivation on the fig5/6 pipeline.

   For each database, runs greedy and exhaustive merge search (N = 5
   initial configurations, three seeds) twice: once with derivation off
   (--no-derive semantics: every what-if cache miss runs the full
   optimizer) and once with derivation on (misses assembled from cached
   access-path atoms, falling back only on the order-sort class), and

   - hard-asserts the merged configuration (items with parents, final
     pages, final cost) is identical between the two modes — the
     bit-identity contract of DESIGN.md §2f;
   - measures actual [Optimizer.invocations] around each run and
     hard-asserts the aggregate full/derived ratio is >= 5x (the
     acceptance bar: derivation answers what-if calls without running
     the optimizer);
   - records wall-clock per mode and how many misses each deriving run
     answered by derivation vs fallback.

   JSON artifact to $IM_BENCH_OUT (default BENCH_derive.json) for
   dev-check. *)

module Search = Im_merging.Search
module Cost_eval = Im_merging.Cost_eval
module Merge = Im_merging.Merge
module Index = Im_catalog.Index
module Optimizer = Im_optimizer.Optimizer

let seeds = [ 2; 3; 4 ]
let min_ratio = 5.0

type run_result = {
  r_fingerprint : string;  (** merged items + parents, rendered *)
  r_pages : int;
  r_cost : float option;
}

let fingerprint items =
  String.concat "; "
    (List.map
       (fun it ->
         Printf.sprintf "%s<-[%s]"
           (Index.to_string it.Merge.it_index)
           (String.concat ", " (List.map Index.to_string it.Merge.it_parents)))
       items)

let equal_result a b =
  String.equal a.r_fingerprint b.r_fingerprint
  && a.r_pages = b.r_pages
  && Option.equal Float.equal a.r_cost b.r_cost

type mode_stats = {
  m_invocations : int;  (** optimizer runs across the three seeds *)
  m_seconds : float;
  m_derived : int;  (** misses answered by derivation *)
  m_fallbacks : int;  (** misses derived-then-abandoned to the optimizer *)
}

(* (results, stats) for one strategy in one mode over all seeds. *)
let measure ~derive db workload strategy =
  let cells =
    List.map
      (fun seed ->
        let initial = Exp_common.initial_config db workload ~n:5 ~seed in
        let before = Optimizer.invocations () in
        let o =
          Search.run ~cost_model:Cost_eval.Optimizer_estimated
            ~cost_constraint:0.10 ~derive db workload ~initial strategy
        in
        ( {
            r_fingerprint = fingerprint o.Search.o_items;
            r_pages = o.Search.o_final_pages;
            r_cost = o.Search.o_final_cost;
          },
          {
            m_invocations = Optimizer.invocations () - before;
            m_seconds = o.Search.o_elapsed_s;
            m_derived = o.Search.o_derived_costs;
            m_fallbacks = o.Search.o_derive_fallbacks;
          } ))
      seeds
  in
  let sum f = Im_util.List_ext.sum_by (fun (_, m) -> f m) cells in
  ( List.map fst cells,
    {
      m_invocations = sum (fun m -> m.m_invocations);
      m_seconds = Im_util.List_ext.sum_by_f (fun (_, m) -> m.m_seconds) cells;
      m_derived = sum (fun m -> m.m_derived);
      m_fallbacks = sum (fun m -> m.m_fallbacks);
    } )

let assert_identical ~db_name ~strategy full derived =
  List.iteri
    (fun i (f, d) ->
      if not (equal_result f d) then
        failwith
          (Printf.sprintf
             "%s/%s seed %d: derived run diverges from full optimization \
              (pages %d vs %d; %s vs %s)"
             db_name strategy (List.nth seeds i) f.r_pages d.r_pages
             f.r_fingerprint d.r_fingerprint))
    (List.combine full derived)

let ratio full derived =
  if derived > 0 then float_of_int full /. float_of_int derived else infinity

let run () =
  Exp_common.section
    "EXP-DERIVE atomic cost derivation: result identity + optimizer-call \
     reduction (fig5/6 setup)";
  let totals_full = ref 0 and totals_derived = ref 0 in
  let rows, json_dbs =
    List.split
      (List.map
         (fun (name, db) ->
           let workload = Exp_common.complex_workload db ~n:30 ~seed:1 in
           let per strategy strategy_name =
             let full_r, full = measure ~derive:false db workload strategy in
             let der_r, der = measure ~derive:true db workload strategy in
             assert_identical ~db_name:name ~strategy:strategy_name full_r
               der_r;
             totals_full := !totals_full + full.m_invocations;
             totals_derived := !totals_derived + der.m_invocations;
             ( [
                 name;
                 strategy_name;
                 string_of_int full.m_invocations;
                 string_of_int der.m_invocations;
                 Printf.sprintf "%.1fx"
                   (ratio full.m_invocations der.m_invocations);
                 Printf.sprintf "%d/%d" der.m_derived der.m_fallbacks;
                 Printf.sprintf "%.3f" full.m_seconds;
                 Printf.sprintf "%.3f" der.m_seconds;
                 "identical";
               ],
               Printf.sprintf
                 "      {\"strategy\": \"%s\", \"full_invocations\": %d, \
                  \"derived_invocations\": %d, \"reduction\": %.3f, \
                  \"derived_costs\": %d, \"fallbacks\": %d, \"full_s\": \
                  %.3f, \"derived_s\": %.3f}"
                 strategy_name full.m_invocations der.m_invocations
                 (ratio full.m_invocations der.m_invocations)
                 der.m_derived der.m_fallbacks full.m_seconds der.m_seconds )
           in
           let g_row, g_json = per Search.Greedy "greedy" in
           let e_row, e_json =
             per (Search.Exhaustive_search { config_limit = 100_000 })
               "exhaustive"
           in
           ( [ g_row; e_row ],
             Printf.sprintf
               "    {\"db\": \"%s\", \"strategies\": [\n%s\n    ]}" name
               (String.concat ",\n" [ g_json; e_json ]) ))
         (Exp_common.databases ()))
  in
  Exp_common.print_table
    ~title:
      "Optimizer invocations and wall-clock, full vs derived, summed over \
       seeds"
    ~header:
      [ "db"; "strategy"; "full opt"; "derived opt"; "reduction";
        "derived/fb"; "full s"; "derived s"; "result" ]
    ~rows:(List.concat rows);
  let overall = ratio !totals_full !totals_derived in
  Printf.printf
    "\noverall: %d optimizer invocations without derivation, %d with \
     (%.1fx reduction)\n"
    !totals_full !totals_derived overall;
  if overall < min_ratio then
    failwith
      (Printf.sprintf
         "EXP-DERIVE: optimizer-call reduction %.2fx is below the %.0fx \
          acceptance bar"
         overall min_ratio);
  let out =
    match Sys.getenv_opt "IM_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_derive.json"
  in
  let oc = open_out out in
  output_string oc
    (Printf.sprintf
       "{\n  \"experiment\": \"derive\",\n  \"full_invocations\": %d,\n\
       \  \"derived_invocations\": %d,\n  \"reduction\": %.3f,\n\
       \  \"min_reduction\": %.1f,\n  \"databases\": [\n%s\n  ],\n\
       \  \"metrics\": %s\n}\n"
       !totals_full !totals_derived overall min_ratio
       (String.concat ",\n" json_dbs)
       (Im_obs.Metrics.to_json ()));
  close_out oc;
  Printf.printf "\nwrote %s\n" out
