(* EXP-MINE — frequent-itemset frontier pruning of the merge-pair
   search (DESIGN.md §2k).

   Three parts:

   1. Scale: a >= 200-index initial configuration (per-query union over
      a pool of distinct ragsgen templates, replayed with harmonically
      skewed frequencies — the shape the lib/scale compactor emits) on
      Synthetic1. Greedy and exhaustive run pruned vs unpruned; the
      MergePair evaluation counts (the [merge_pair_seconds] histograms)
      must drop by the acceptance bars — >= 5x for greedy on the full
      configuration.

   2. fig5–8 fidelity: on the paper-figure setups (three databases;
      greedy, exhaustive, MergePair-Syntactic, the fig8 N=20 / 20%
      constraint), the pruned search's final storage and Cost(W,C)
      must stay within 3 % of the unpruned search — hard-asserted.

   3. S = 0 identity: [--prune-support 0] must reproduce the unpruned
      merged configuration exactly (items, pages, cost).

   JSON artifact to $IM_BENCH_OUT (default BENCH_mine.json) for
   dev-check; IM_MINE_FAST=1 shrinks every leg to smoke size. *)

module Database = Im_catalog.Database
module Index = Im_catalog.Index
module Workload = Im_workload.Workload
module Search = Im_merging.Search
module Merge = Im_merging.Merge
module Merge_pair = Im_merging.Merge_pair
module Cost_eval = Im_merging.Cost_eval
module Mine = Im_mine.Mine
module Metrics = Im_obs.Metrics

let fast =
  match Sys.getenv_opt "IM_MINE_FAST" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

(* Scale-leg knobs. The support threshold is relative to total mass:
   with harmonic frequencies over [pool_n] templates, an itemset needs
   roughly the mass of a top-~15 template behind it to survive. *)
let pool_n = if fast then 60 else 240
let min_indexes = if fast then 30 else 200

let support_scale =
  match Sys.getenv_opt "IM_MINE_SUPPORT" with
  | Some s when s <> "" -> float_of_string s
  | _ -> 0.10
let greedy_bar = if fast then 1.5 else 5.0
let exhaustive_bar = 1.5

(* fig-leg support: one unit-frequency query of the 30-query paper
   workloads carries mass 1/30 ~ 0.0333, so at 0.03 every single
   query's footprint supports its own column sets. *)
let support_fig = 0.03
let fig_tolerance = 0.03

(* ---- MergePair evaluation counting ----

   [Merge_pair.merge] times every evaluation through one histogram per
   procedure; the get-or-create registry hands back the same handles,
   so count deltas around a search are exactly its evaluations. *)
let pair_handles =
  List.map
    (fun name ->
      Metrics.histogram ~labels:[ ("procedure", name) ] "merge_pair_seconds")
    [ "cost_based"; "syntactic"; "exhaustive" ]

let pair_evals () =
  List.fold_left (fun n h -> n + Metrics.Histogram.count h) 0 pair_handles

let counted f =
  let before = pair_evals () in
  let result = f () in
  (result, pair_evals () - before)

(* ---- Part 1: the >= 200-index scale leg ---- *)

let scale_workload db =
  let queries =
    Workload.queries
      (Im_workload.Ragsgen.generate db ~rng:(Im_util.Rng.create 11) ~n:pool_n)
  in
  Workload.of_entries ~name:"mine-scale"
    (List.mapi
       (fun i q ->
         { Workload.query = q; freq = float_of_int pool_n /. float_of_int (i + 1) })
       queries)

let ratio_of ~unpruned ~pruned =
  float_of_int unpruned /. float_of_int (max 1 pruned)

let run_scale db =
  let workload = scale_workload db in
  let initial = Im_tuning.Initial_config.per_query_union db workload in
  let n_initial = List.length initial in
  if n_initial < min_indexes then
    failwith
      (Printf.sprintf
         "EXP-MINE: per-query union built only %d indexes (need >= %d)"
         n_initial min_indexes);
  (* No-Cost mode: the scale leg measures the enumeration, not the cost
     model — greedy folds by pure storage reduction, so every same-table
     pair evaluation the frontier saves is visible undiluted. *)
  let go ?prune_support strategy =
    counted (fun () ->
        Search.run ?prune_support ~cost_model:Cost_eval.default_no_cost db
          workload ~initial strategy)
  in
  let greedy_plain, greedy_unpruned = go Search.Greedy in
  let greedy_pruned_o, greedy_pruned =
    go ~prune_support:support_scale Search.Greedy
  in
  let greedy_ratio = ratio_of ~unpruned:greedy_unpruned ~pruned:greedy_pruned in
  if greedy_ratio < greedy_bar then
    failwith
      (Printf.sprintf
         "EXP-MINE: greedy pair evaluations %d -> %d (%.1fx) below the %.1fx \
          acceptance bar at support %g on %d indexes"
         greedy_unpruned greedy_pruned greedy_ratio greedy_bar support_scale
         n_initial);
  (* Exhaustive enumerates set partitions per table, so it runs on a
     per-table slice of the same configuration (the Bell numbers, not
     the pruning, are what caps it) under a bounded config limit. *)
  let config_limit = if fast then 500 else 2_000 in
  let slice =
    (* Hot head + cold tail of each group: per-query-union lists indexes
       in workload (frequency) order, so this mixes supported and
       unsupported parents the way a real configuration does. *)
    let by_table =
      Im_util.List_ext.group_by (fun ix -> ix.Index.idx_table) initial
    in
    List.concat_map
      (fun (_, ixs) ->
        let n = List.length ixs in
        List.filteri (fun i _ -> i < 3 || i >= n - 4) ixs)
      (Im_util.List_ext.take 2 by_table)
  in
  let go_ex ?prune_support () =
    counted (fun () ->
        Search.run ?prune_support ~cost_model:Cost_eval.default_no_cost db
          workload ~initial:slice
          (Search.Exhaustive_search { config_limit }))
  in
  let _, ex_unpruned = go_ex () in
  let ex_pruned_o, ex_pruned = go_ex ~prune_support:support_scale () in
  let ex_ratio = ratio_of ~unpruned:ex_unpruned ~pruned:ex_pruned in
  if ex_ratio < exhaustive_bar then
    failwith
      (Printf.sprintf
         "EXP-MINE: exhaustive pair evaluations %d -> %d (%.1fx) below the \
          %.1fx bar at support %g on %d indexes"
         ex_unpruned ex_pruned ex_ratio exhaustive_bar support_scale
         (List.length slice));
  let pruning =
    match greedy_pruned_o.Search.o_pruning with
    | Some st -> st
    | None -> failwith "EXP-MINE: pruned greedy outcome carries no stats"
  in
  Exp_common.print_table
    ~title:
      (Printf.sprintf
         "Frontier pruning at scale (Synthetic1, %d indexes, support %g)"
         n_initial support_scale)
    ~header:
      [ "strategy"; "indexes"; "pairs unpruned"; "pairs pruned"; "ratio";
        "pages unpruned"; "pages pruned" ]
    ~rows:
      [
        [
          "greedy"; string_of_int n_initial; string_of_int greedy_unpruned;
          string_of_int greedy_pruned; Printf.sprintf "%.1fx" greedy_ratio;
          string_of_int greedy_plain.Search.o_final_pages;
          string_of_int greedy_pruned_o.Search.o_final_pages;
        ];
        [
          "exhaustive"; string_of_int (List.length slice);
          string_of_int ex_unpruned; string_of_int ex_pruned;
          Printf.sprintf "%.1fx" ex_ratio; "-";
          string_of_int ex_pruned_o.Search.o_final_pages;
        ];
      ];
  ( n_initial, greedy_unpruned, greedy_pruned, greedy_ratio, ex_unpruned,
    ex_pruned, ex_ratio, pruning )

(* ---- Part 2: fidelity on the fig5–8 setups ---- *)

let fig_setups =
  [
    ("fig5-greedy", Search.Greedy, Merge_pair.Cost_based, 0.10, 5, 2);
    ( "fig6-exhaustive",
      Search.Exhaustive_search { config_limit = 100_000 },
      Merge_pair.Cost_based, 0.10, 5, 2 );
    ("fig7-syntactic", Search.Greedy, Merge_pair.Syntactic, 0.10, 5, 2);
    ("fig8-n20", Search.Greedy, Merge_pair.Cost_based, 0.20, 20, 120);
  ]

let rel_dev a b = if a = 0. then Float.abs (b -. a) else Float.abs (b -. a) /. a

let run_fig () =
  let databases =
    if fast then [ ("Synthetic1", Lazy.force Exp_common.synthetic1) ]
    else Exp_common.databases ()
  in
  let max_pages_dev = ref 0. in
  let max_cost_dev = ref 0. in
  let rows =
    List.concat_map
      (fun (name, db) ->
        let workload = Exp_common.complex_workload db ~n:30 ~seed:1 in
        List.map
          (fun (sname, strategy, mp, constraint_, n, seed) ->
            let initial = Exp_common.initial_config db workload ~n ~seed in
            let go ?prune_support () =
              Search.run ?prune_support ~merge_pair:mp
                ~cost_model:Cost_eval.Optimizer_estimated
                ~cost_constraint:constraint_ db workload ~initial strategy
            in
            let plain = go () in
            let pruned = go ~prune_support:support_fig () in
            let pages_dev =
              rel_dev
                (float_of_int plain.Search.o_final_pages)
                (float_of_int pruned.Search.o_final_pages)
            in
            let cost_dev =
              match (plain.Search.o_final_cost, pruned.Search.o_final_cost) with
              | Some a, Some b -> rel_dev a b
              | _ -> 0.
            in
            max_pages_dev := Float.max !max_pages_dev pages_dev;
            max_cost_dev := Float.max !max_cost_dev cost_dev;
            if pages_dev > fig_tolerance || cost_dev > fig_tolerance then
              failwith
                (Printf.sprintf
                   "EXP-MINE: %s/%s: pruned search deviates %.1f%% in pages / \
                    %.1f%% in cost from unpruned (tolerance %.0f%%)"
                   name sname (100. *. pages_dev) (100. *. cost_dev)
                   (100. *. fig_tolerance));
            [ name; sname;
              string_of_int plain.Search.o_final_pages;
              string_of_int pruned.Search.o_final_pages;
              Printf.sprintf "%.2f%%" (100. *. pages_dev);
              Printf.sprintf "%.2f%%" (100. *. cost_dev) ])
          fig_setups)
      databases
  in
  Exp_common.print_table
    ~title:
      (Printf.sprintf
         "fig5–8 fidelity at support %g (tolerance %.0f%%)" support_fig
         (100. *. fig_tolerance))
    ~header:
      [ "db"; "setup"; "pages unpruned"; "pages pruned"; "pages dev";
        "cost dev" ]
    ~rows;
  (!max_pages_dev, !max_cost_dev)

(* ---- Part 3: S = 0 identity ---- *)

let fingerprint items =
  String.concat "; "
    (List.map
       (fun (it : Merge.item) ->
         Printf.sprintf "%s<-[%s]"
           (Index.to_string it.Merge.it_index)
           (String.concat ", " (List.map Index.to_string it.Merge.it_parents)))
       items)

let run_identity () =
  let databases =
    if fast then [ ("Synthetic1", Lazy.force Exp_common.synthetic1) ]
    else Exp_common.databases ()
  in
  List.iter
    (fun (name, db) ->
      let workload = Exp_common.complex_workload db ~n:30 ~seed:1 in
      let initial = Exp_common.initial_config db workload ~n:5 ~seed:2 in
      List.iter
        (fun (sname, strategy) ->
          let go prune_support =
            Search.run ?prune_support ~cost_model:Cost_eval.Optimizer_estimated
              ~cost_constraint:0.10 db workload ~initial strategy
          in
          let plain = go None in
          let zero = go (Some 0.0) in
          if
            not
              (String.equal
                 (fingerprint plain.Search.o_items)
                 (fingerprint zero.Search.o_items)
              && plain.Search.o_final_pages = zero.Search.o_final_pages
              && Option.equal Float.equal plain.Search.o_final_cost
                   zero.Search.o_final_cost)
          then
            failwith
              (Printf.sprintf
                 "EXP-MINE: %s/%s: --prune-support 0 diverges from the \
                  unpruned search (%d vs %d pages; %s vs %s)"
                 name sname plain.Search.o_final_pages zero.Search.o_final_pages
                 (fingerprint plain.Search.o_items)
                 (fingerprint zero.Search.o_items)))
        [
          ("greedy", Search.Greedy);
          ("exhaustive", Search.Exhaustive_search { config_limit = 100_000 });
        ];
      Printf.printf "  [%s] --prune-support 0 identical (greedy, exhaustive)\n%!"
        name)
    databases

let run () =
  Exp_common.section
    (Printf.sprintf
       "EXP-MINE frequent-itemset frontier pruning (pool %d, support %g%s)"
       pool_n support_scale
       (if fast then ", fast" else ""));
  let db = Lazy.force Exp_common.synthetic1 in
  let ( n_initial, greedy_unpruned, greedy_pruned, greedy_ratio, ex_unpruned,
        ex_pruned, ex_ratio, pruning ) =
    run_scale db
  in
  let pages_dev, cost_dev = run_fig () in
  run_identity ();
  let out =
    match Sys.getenv_opt "IM_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_mine.json"
  in
  let oc = open_out out in
  output_string oc
    (Printf.sprintf
       "{\n  \"experiment\": \"mine\",\n  \"fast\": %b,\n\
       \  \"initial_indexes\": %d,\n  \"support\": %g,\n\
       \  \"greedy\": {\"pairs_unpruned\": %d, \"pairs_pruned\": %d, \
        \"ratio\": %.2f, \"bar\": %.1f},\n\
       \  \"exhaustive\": {\"pairs_unpruned\": %d, \"pairs_pruned\": %d, \
        \"ratio\": %.2f, \"bar\": %.1f},\n\
       \  \"frontier\": {\"itemsets\": %d, \"supported_tables\": %d, \
        \"kept\": %d, \"pruned\": %d},\n\
       \  \"fig\": {\"support\": %g, \"max_pages_dev\": %.6f, \
        \"max_cost_dev\": %.6f, \"tolerance\": %g},\n\
       \  \"identity\": \"ok\",\n  \"metrics\": %s\n}\n"
       fast n_initial support_scale greedy_unpruned greedy_pruned greedy_ratio
       greedy_bar ex_unpruned ex_pruned ex_ratio exhaustive_bar
       pruning.Mine.fs_itemsets pruning.Mine.fs_supported_tables
       pruning.Mine.fs_kept pruning.Mine.fs_pruned support_fig pages_dev
       cost_dev fig_tolerance (Metrics.to_json ()));
  close_out oc;
  Printf.printf "\nwrote %s\n" out
