(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §4 for the index).

   Usage: dune exec bench/main.exe [-- experiment ...]
   where experiment is one of e0a e0b fig5 fig6 fig7 fig8 ablate costval
   micro online costsvc par derive scale mine serve
   (default: everything). *)

let experiments =
  [
    ("e0a", Exp_intro.run_e0a);
    ("e0b", Exp_intro.run_e0b);
    ("fig5", Exp_fig56.run_fig5);
    ("fig6", Exp_fig56.run_fig6);
    ("fig7", Exp_fig7.run);
    ("fig8", Exp_fig8.run);
    ("ablate", Exp_ablate.run);
    ("costval", Exp_costval.run);
    ("micro", Exp_micro.run);
    ("online", Exp_online.run);
    ("costsvc", Exp_costsvc.run);
    ("par", Exp_par.run);
    ("derive", Exp_derive.run);
    ("scale", Exp_scale.run);
    ("mine", Exp_mine.run);
    ("serve", Exp_serve.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  print_endline "Index Merging (Chaudhuri & Narasayya, ICDE 1999) — reproduction";
  Printf.printf "TPC-D scale factor: %g (set IM_BENCH_SF to change)\n%!"
    Exp_common.tpcd_sf;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let (), elapsed = Im_util.Stopwatch.time f in
        Printf.printf "\n[%s finished in %.1fs]\n%!" name elapsed
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 2)
    requested
