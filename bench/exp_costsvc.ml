(* EXP-COSTSVC — cost accounting of the unified memoizing service on
   the fig5/6 pipeline (exhaustive + greedy, three seeds per database).

   Two modes:
   - isolated: a fresh service per Search.run — the pre-refactor
     operating point, where nothing is shared between strategies;
   - shared: one service per (database, seed) handed to both runs, so
     configurations the exhaustive enumeration costed are cache hits
     for greedy.

   The results (final pages per strategy) must be identical in both
   modes; the shared mode must spend fewer optimizer calls. Totals per
   database and the savings are printed, and a JSON artifact is written
   to $IM_BENCH_OUT (default BENCH_costsvc.json) for dev-check. *)

module Search = Im_merging.Search
module Cost_eval = Im_merging.Cost_eval
module Service = Im_costsvc.Service

let seeds = [ 2; 3; 4 ]

type cell = {
  c_opt_calls : int;
  c_cost_evals : int;
  c_hits : int;
  c_misses : int;
  c_elapsed_s : float;
  c_exh_pages : int;
  c_greedy_pages : int;
}

type mode = Isolated | Shared

let run_mode ~mode db workload ~seed =
  let initial = Exp_common.initial_config db workload ~n:5 ~seed in
  let service =
    match mode with
    | Isolated -> None
    | Shared ->
      Some
        (Service.create
           ~update_cost:(Im_merging.Maintenance.config_batch_cost db)
           db)
  in
  let run strategy =
    Search.run ?service ~cost_model:Cost_eval.Optimizer_estimated
      ~cost_constraint:0.10 db workload ~initial strategy
  in
  let e = run (Search.Exhaustive_search { config_limit = 100_000 }) in
  let g = run Search.Greedy in
  {
    c_opt_calls = e.Search.o_optimizer_calls + g.Search.o_optimizer_calls;
    c_cost_evals = e.Search.o_cost_evaluations + g.Search.o_cost_evaluations;
    c_hits = e.Search.o_cache_hits + g.Search.o_cache_hits;
    c_misses = e.Search.o_cache_misses + g.Search.o_cache_misses;
    c_elapsed_s = e.Search.o_elapsed_s +. g.Search.o_elapsed_s;
    c_exh_pages = e.Search.o_final_pages;
    c_greedy_pages = g.Search.o_final_pages;
  }

let total cells =
  {
    c_opt_calls = Im_util.List_ext.sum_by (fun c -> c.c_opt_calls) cells;
    c_cost_evals = Im_util.List_ext.sum_by (fun c -> c.c_cost_evals) cells;
    c_hits = Im_util.List_ext.sum_by (fun c -> c.c_hits) cells;
    c_misses = Im_util.List_ext.sum_by (fun c -> c.c_misses) cells;
    c_elapsed_s = Im_util.List_ext.sum_by_f (fun c -> c.c_elapsed_s) cells;
    c_exh_pages = Im_util.List_ext.sum_by (fun c -> c.c_exh_pages) cells;
    c_greedy_pages = Im_util.List_ext.sum_by (fun c -> c.c_greedy_pages) cells;
  }

let json_cell name iso sh savings =
  Printf.sprintf
    "    {\"db\": \"%s\", \"isolated\": {\"opt_calls\": %d, \"cost_evals\": \
     %d, \"hits\": %d, \"misses\": %d, \"elapsed_s\": %.3f}, \"shared\": \
     {\"opt_calls\": %d, \"cost_evals\": %d, \"hits\": %d, \"misses\": %d, \
     \"elapsed_s\": %.3f}, \"exh_pages\": %d, \"greedy_pages\": %d, \
     \"opt_call_savings_pct\": %.1f}"
    name iso.c_opt_calls iso.c_cost_evals iso.c_hits iso.c_misses
    iso.c_elapsed_s sh.c_opt_calls sh.c_cost_evals sh.c_hits sh.c_misses
    sh.c_elapsed_s iso.c_exh_pages iso.c_greedy_pages savings

let run () =
  Exp_common.section
    "EXP-COSTSVC unified cost service: isolated vs shared (fig5/6 setup)";
  let rows, json_rows =
    List.split
      (List.map
         (fun (name, db) ->
           let workload = Exp_common.complex_workload db ~n:30 ~seed:1 in
           let cells mode =
             total (List.map (fun seed -> run_mode ~mode db workload ~seed) seeds)
           in
           let iso = cells Isolated in
           let sh = cells Shared in
           (* Sharing the cache must never change the search result. *)
           if iso.c_exh_pages <> sh.c_exh_pages
              || iso.c_greedy_pages <> sh.c_greedy_pages
           then
             failwith
               (Printf.sprintf
                  "%s: shared-service results diverge (exh %d vs %d, greedy \
                   %d vs %d)"
                  name iso.c_exh_pages sh.c_exh_pages iso.c_greedy_pages
                  sh.c_greedy_pages);
           let savings =
             if iso.c_opt_calls = 0 then 0.
             else
               100.
               *. (1. -. (float_of_int sh.c_opt_calls /. float_of_int iso.c_opt_calls))
           in
           ( [
               name;
               string_of_int iso.c_opt_calls;
               string_of_int sh.c_opt_calls;
               Printf.sprintf "%.1f%%" savings;
               Printf.sprintf "%d/%d" sh.c_hits sh.c_misses;
               Printf.sprintf "%.3f/%.3f" iso.c_elapsed_s sh.c_elapsed_s;
               string_of_int iso.c_exh_pages;
               string_of_int iso.c_greedy_pages;
             ],
             json_cell name iso sh savings ))
         (Exp_common.databases ()))
  in
  Exp_common.print_table ~title:"Optimizer-call accounting, summed over seeds"
    ~header:
      [ "db"; "iso calls"; "shared calls"; "saved"; "hits/misses (shared)";
        "elapsed iso/shared"; "exh pages"; "greedy pages" ]
    ~rows;
  let out =
    match Sys.getenv_opt "IM_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_costsvc.json"
  in
  let oc = open_out out in
  (* Embed the process metrics registry so the artifact carries the
     full instrumentation picture (latency percentiles included), not
     just the experiment's own counters. *)
  output_string oc
    ("{\n  \"experiment\": \"costsvc\",\n  \"databases\": [\n"
     ^ String.concat ",\n" json_rows
     ^ "\n  ],\n  \"metrics\": "
     ^ Im_obs.Metrics.to_json ()
     ^ "\n}\n");
  close_out oc;
  Printf.printf "\nwrote %s\n" out
