(* EXP-PAR — parallel candidate evaluation on the fig5/6 pipeline.

   For each database and each pool size in {0, 1, 2, 4, 8}, runs greedy
   and exhaustive (N = 5 initial configurations, three seeds) through
   [Search.run] with an explicit [Im_par] pool, and

   - hard-asserts the result (merged items with their parents, final
     pages, final cost) is identical to the domains = 0 run — the
     determinism contract of DESIGN.md §2e;
   - records wall-clock per setting and derives the speedup curve
     relative to domains = 0.

   The speedups are whatever the runner's cores deliver — on a
   single-core machine every setting lands near 1× (or below: queue
   overhead with nothing to run it on) and the identity assertion is
   the meaningful claim. JSON artifact to $IM_BENCH_OUT (default
   BENCH_par.json) for dev-check. *)

module Search = Im_merging.Search
module Cost_eval = Im_merging.Cost_eval
module Merge = Im_merging.Merge
module Index = Im_catalog.Index
module Pool = Im_par.Pool

let domain_settings = [ 0; 1; 2; 4; 8 ]
let seeds = [ 2; 3; 4 ]

type run_result = {
  r_fingerprint : string;  (** merged items + parents, rendered *)
  r_pages : int;
  r_cost : float option;
}

let fingerprint items =
  String.concat "; "
    (List.map
       (fun it ->
         Printf.sprintf "%s<-[%s]"
           (Index.to_string it.Merge.it_index)
           (String.concat ", " (List.map Index.to_string it.Merge.it_parents)))
       items)

let equal_result a b =
  String.equal a.r_fingerprint b.r_fingerprint
  && a.r_pages = b.r_pages
  && Option.equal Float.equal a.r_cost b.r_cost

let run_one ~pool db workload ~seed strategy =
  let initial = Exp_common.initial_config db workload ~n:5 ~seed in
  let o =
    Search.run ~pool ~cost_model:Cost_eval.Optimizer_estimated
      ~cost_constraint:0.10 db workload ~initial strategy
  in
  ( {
      r_fingerprint = fingerprint o.Search.o_items;
      r_pages = o.Search.o_final_pages;
      r_cost = o.Search.o_final_cost;
    },
    o.Search.o_elapsed_s )

(* One (results, elapsed-sum) per strategy at this pool size. *)
let measure ~domains db workload =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let per strategy =
    let cells =
      List.map (fun seed -> run_one ~pool db workload ~seed strategy) seeds
    in
    (List.map fst cells, Im_util.List_ext.sum_by_f snd cells)
  in
  (per Search.Greedy, per (Search.Exhaustive_search { config_limit = 100_000 }))

let assert_identical ~db_name ~strategy ~domains baseline results =
  List.iteri
    (fun i (b, r) ->
      if not (equal_result b r) then
        failwith
          (Printf.sprintf
             "%s/%s seed %d: domains=%d diverges from sequential (pages %d vs \
              %d; %s vs %s)"
             db_name strategy (List.nth seeds i) domains b.r_pages r.r_pages
             b.r_fingerprint r.r_fingerprint))
    (List.combine baseline results)

let speedup base s = if s > 0. then base /. s else 0.

let run () =
  Exp_common.section
    "EXP-PAR parallel search: result identity + speedup (fig5/6 setup)";
  Printf.printf "recommended_domain_count: %d\n%!"
    (Domain.recommended_domain_count ());
  (* (exhaustive_s at domains=0, at domains=4) per database, for the
     aggregate speedup gate below. *)
  let exhaustive_agg = ref [] in
  let rows, json_dbs =
    List.split
      (List.map
         (fun (name, db) ->
           let workload = Exp_common.complex_workload db ~n:30 ~seed:1 in
           (* Unrecorded warmup: the first search over a database pays
              one-time memoized work (column stats, per-index storage
              builds, interning) that would otherwise be billed entirely
              to the domains = 0 setting and fake a parallel speedup. *)
           ignore (measure ~domains:0 db workload);
           let settings =
             List.map (fun d -> (d, measure ~domains:d db workload)) domain_settings
           in
           let (g0, g0_s), (e0, e0_s) = List.assoc 0 settings in
           let _, (_, e4_s) = List.assoc 4 settings in
           exhaustive_agg := (e0_s, e4_s) :: !exhaustive_agg;
           let setting_rows, setting_json =
             List.split
               (List.map
                  (fun (d, ((g, g_s), (e, e_s))) ->
                    assert_identical ~db_name:name ~strategy:"greedy" ~domains:d
                      g0 g;
                    assert_identical ~db_name:name ~strategy:"exhaustive"
                      ~domains:d e0 e;
                    ( [
                        name;
                        string_of_int d;
                        Printf.sprintf "%.3f" g_s;
                        Printf.sprintf "%.2fx" (speedup g0_s g_s);
                        Printf.sprintf "%.3f" e_s;
                        Printf.sprintf "%.2fx" (speedup e0_s e_s);
                        "identical";
                      ],
                      Printf.sprintf
                        "      {\"domains\": %d, \"greedy_s\": %.3f, \
                         \"greedy_speedup\": %.3f, \"exhaustive_s\": %.3f, \
                         \"exhaustive_speedup\": %.3f}"
                        d g_s (speedup g0_s g_s) e_s (speedup e0_s e_s) ))
                  settings)
           in
           let pages which = Im_util.List_ext.sum_by (fun r -> r.r_pages) which in
           ( setting_rows,
             Printf.sprintf
               "    {\"db\": \"%s\", \"greedy_pages\": %d, \
                \"exhaustive_pages\": %d, \"settings\": [\n%s\n    ]}"
               name (pages g0) (pages e0)
               (String.concat ",\n" setting_json) ))
         (Exp_common.databases ()))
  in
  Exp_common.print_table
    ~title:"Wall-clock by pool size, summed over seeds (speedup vs domains=0)"
    ~header:
      [ "db"; "domains"; "greedy s"; "greedy x"; "exhaustive s";
        "exhaustive x"; "result" ]
    ~rows:(List.concat rows);
  (* Batching audit: the task-size distribution every queued chunk
     recorded into [par_task_seconds], and the chunk sizes the batcher
     chose.  Both go into the artifact so the heuristic is auditable
     across runs. *)
  let task_h = Im_obs.Metrics.histogram "par_task_seconds" in
  let task_p50_s = Im_obs.Metrics.Histogram.percentile task_h 0.5 in
  let task_buckets = Im_obs.Metrics.Histogram.nonzero_buckets task_h in
  let chunk_decisions = Pool.Batcher.decisions () in
  Printf.printf "\ntask-size histogram (%d tasks, p50 <= %.0f us):\n"
    (Im_obs.Metrics.Histogram.count task_h) (task_p50_s *. 1e6);
  List.iter
    (fun (upper_s, count) ->
      Printf.printf "  <= %10.1f us : %d\n" (upper_s *. 1e6) count)
    task_buckets;
  List.iter
    (fun site ->
      let h =
        Im_obs.Metrics.histogram ~labels:[ ("site", site) ] "par_chunk_seconds"
      in
      let c = Im_obs.Metrics.Histogram.count h in
      if c > 0 then
        Printf.printf "chunks at %-18s %5d chunks, p50 <= %8.1f us\n" site c
          (Im_obs.Metrics.Histogram.percentile h 0.5 *. 1e6))
    [
      "greedy_score"; "greedy_accept"; "exhaustive_block"; "exhaustive_score";
      "exhaustive_accept"; "service_workload"; "scale_score";
    ];
  Printf.printf "batch chunk sizes chosen (site chunk xtimes):\n";
  List.iter
    (fun (site, chunk, times) ->
      Printf.printf "  %-18s %6d  x%d\n"
        (if site = "" then "?" else site)
        chunk times)
    chunk_decisions;
  (* Aggregate exhaustive speedup at 4 domains over all databases. *)
  let sum f = Im_util.List_ext.sum_by_f f !exhaustive_agg in
  let exhaustive_speedup_4 = speedup (sum fst) (sum snd) in
  Printf.printf "aggregate exhaustive speedup at 4 domains: %.2fx\n%!"
    exhaustive_speedup_4;
  (* Gates.  On a multicore runner the batching must actually pay; on
     a single-core runner no parallel speedup exists, so assert the
     granularity invariant instead: the median queued task is at least
     100 us (was ~4 us before cost-aware batching). *)
  if Domain.recommended_domain_count () >= 4 then begin
    if exhaustive_speedup_4 <= 1.5 then
      failwith
        (Printf.sprintf
           "exhaustive speedup at 4 domains is %.2fx on a %d-core runner \
            (need > 1.5x)"
           exhaustive_speedup_4
           (Domain.recommended_domain_count ()))
  end
  else if Im_obs.Metrics.Histogram.count task_h > 0 && task_p50_s < 100e-6
  then
    failwith
      (Printf.sprintf
         "p50 queued-task size is %.1f us (need >= 100 us): batching is \
          producing confetti tasks again"
         (task_p50_s *. 1e6));
  let out =
    match Sys.getenv_opt "IM_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_par.json"
  in
  let oc = open_out out in
  output_string oc
    (Printf.sprintf
       "{\n  \"experiment\": \"par\",\n  \"recommended_domain_count\": %d,\n\
       \  \"domain_settings\": [%s],\n  \"databases\": [\n%s\n  ],\n\
       \  \"exhaustive_speedup_4\": %.3f,\n  \"task_p50_us\": %.1f,\n\
       \  \"task_seconds_histogram\": [%s],\n  \"batch_chunks\": [%s],\n\
       \  \"metrics\": %s\n}\n"
       (Domain.recommended_domain_count ())
       (String.concat ", " (List.map string_of_int domain_settings))
       (String.concat ",\n" json_dbs)
       exhaustive_speedup_4 (task_p50_s *. 1e6)
       (String.concat ", "
          (List.map
             (fun (upper_s, count) ->
               Printf.sprintf "{\"le_us\": %.3f, \"count\": %d}"
                 (upper_s *. 1e6) count)
             task_buckets))
       (String.concat ", "
          (List.map
             (fun (site, chunk, times) ->
               Printf.sprintf
                 "{\"site\": \"%s\", \"chunk\": %d, \"times\": %d}" site chunk
                 times)
             chunk_decisions))
       (Im_obs.Metrics.to_json ()));
  close_out oc;
  Printf.printf "\nwrote %s\n" out
