(* EXP-SERVE — the multi-tenant daemon under concurrent pipelined load.

   Spawns the real CLI daemon (`serve -d synthetic1` plus --tenant
   sessions over synthetic1/synthetic2) and drives IM_SERVE_CLIENTS
   concurrent clients (default 2000 — past the FD_SETSIZE select
   ceiling) spread round-robin across IM_SERVE_TENANTS tenants
   (default 4, including the default tenant) from a single nonblocking
   event loop on Im_evloop (epoll on Linux, poll elsewhere — the
   client driver scales past FD_SETSIZE the same way the daemon does).
   Each client binds its tenant with TENANT USE, pipelines
   IM_SERVE_DEPTH commands (default 20: STMTs on the tenant's own
   table, a STATS every tenth), reads every reply back, and closes. A
   control pass then forces one EPOCH per tenant, lists tenants,
   scrapes METRICS, and shuts the daemon down.

   A second phase measures dispatch isolation: a fresh daemon with an
   env-injected epoch delay (IM_EPOCH_DELAY_MS) runs a slow forced
   epoch for one tenant while another tenant's client keeps issuing
   sequential STMTs; the bench hard-asserts that the bystander's
   client-observed STMT p99 stays within 2x of its no-epoch baseline.

   The soft RLIMIT_NOFILE is raised toward the client count before the
   daemon is spawned (the daemon inherits it); the run aborts with a
   `ulimit -n` hint if the limit cannot be raised far enough.
   IM_SERVE_BACKEND ({auto,epoll,poll,select}, default auto) selects
   the daemon's --event-backend; select caps the fleet at ~1000.

   Reported: client-observed p50/p99 per verb (reply-read time minus
   the time the command's bytes left the client), bytes in/out, the
   isolation-phase latencies, and the daemon's own metrics registry.
   Hard gates:

   - every client gets exactly one reply per command (zero reply loss)
     and zero ERR replies;
   - the daemon counted zero write errors, zero backpressure closes,
     zero rejected connections;
   - the output-queue high-water stayed under --max-output-bytes;
   - bystander STMT p99 during a slow epoch <= max(2x baseline, 25ms).

   JSON artifact to $IM_BENCH_OUT (default BENCH_serve.json). *)

module Evloop = Im_evloop.Evloop

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v ->
    (match int_of_string_opt v with
     | Some n when n > 0 -> n
     | _ -> failwith (Printf.sprintf "%s must be a positive int, got %S" name v)
     )
  | None -> default

let n_clients () = getenv_int "IM_SERVE_CLIENTS" 2000
let n_tenants () = getenv_int "IM_SERVE_TENANTS" 4
let depth () = getenv_int "IM_SERVE_DEPTH" 20

let backend_name () =
  match Sys.getenv_opt "IM_SERVE_BACKEND" with
  | Some b when b <> "" ->
    (match Evloop.backend_of_string b with
     | Ok _ -> b
     | Error e -> failwith ("IM_SERVE_BACKEND: " ^ e))
  | _ -> "auto"

let deadline_s = 300.

(* ---- Daemon under test ---- *)

let cli_path () =
  let here = Filename.dirname Sys.executable_name in
  let path =
    Filename.concat (Filename.dirname here)
      (Filename.concat "bin" "index_merge_cli.exe")
  in
  if not (Sys.file_exists path) then
    failwith
      (path ^ " not built — run `dune build` before `bench/main.exe serve`");
  path

(* Tenant names and the --tenant specs creating them. The default
   tenant is named after -d; extras alternate synthetic1/synthetic2. *)
let tenant_names n =
  "synthetic1"
  :: List.init (n - 1) (fun i -> Printf.sprintf "t%d" (i + 2))

let tenant_specs n =
  List.concat_map
    (fun i ->
      [
        "--tenant";
        Printf.sprintf "t%d=synthetic%d" (i + 2) (1 + (i mod 2));
      ])
    (List.init (n - 1) Fun.id)

type daemon = { pid : int; stdout : in_channel; port : int; backend : string }

let start_daemon ?(env = []) ~tenants ~max_connections () =
  let out_read, out_write = Unix.pipe ~cloexec:false () in
  let argv =
    [
      cli_path (); "serve"; "-d"; "synthetic1"; "--port"; "0";
      "--check-every"; "1000000000"; "--read-timeout"; "120";
      "--max-connections"; string_of_int max_connections;
      "--event-backend"; backend_name ();
    ]
    @ tenant_specs tenants
  in
  let pid =
    Unix.create_process_env (cli_path ()) (Array.of_list argv)
      (Array.append (Unix.environment ()) (Array.of_list env))
      Unix.stdin out_write Unix.stderr
  in
  Unix.close out_write;
  let stdout = Unix.in_channel_of_descr out_read in
  let banner = input_line stdout in
  let tenants_line = input_line stdout in
  Printf.printf "%s\n%s\n%!" banner tenants_line;
  let port =
    try
      Scanf.sscanf
        (List.find
           (fun s ->
             String.length s > 10 && String.sub s 0 10 = "127.0.0.1:")
           (String.split_on_char ' ' banner))
        "127.0.0.1:%d" (fun p -> p)
    with _ -> failwith ("no port in daemon banner: " ^ banner)
  in
  (* "... backend <name>, <n> epoch workers)" at the tail of line 2. *)
  let backend =
    let words = String.split_on_char ' ' tenants_line in
    let rec after = function
      | "backend" :: b :: _ ->
        String.map (function ',' -> ' ' | c -> c) b |> String.trim
      | _ :: rest -> after rest
      | [] -> "unknown"
    in
    after words
  in
  { pid; stdout; port; backend }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)
  in
  (* The daemon accepts in bursts between event-loop rounds; a burst
     of sequential connects can momentarily fill the listen backlog. *)
  let rec go attempt =
    try Unix.connect fd addr
    with Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EAGAIN), _, _)
      when attempt < 50 ->
      Unix.sleepf 0.02;
      go (attempt + 1)
  in
  go 0;
  fd

(* ---- Client fleet ---- *)

type client = {
  fd : Unix.file_descr;
  out : Bytes.t;  (** the whole pipeline, written as the socket allows *)
  mutable off : int;
  cmd_verbs : string array;
  cmd_ends : int array;  (** end offset of each command in [out] *)
  mutable stamped : int;  (** commands whose bytes have fully left *)
  send_times : float array;
  mutable received : int;
  inbuf : Buffer.t;
  mutable line_start : int;  (** scan resume point into [inbuf] *)
  mutable errors : string list;
  mutable closed : bool;
}

(* Client [i] of [n] binds tenant [i mod tenants] and touches only
   that tenant's table t[tenant_idx] — disjoint per-tenant workloads,
   checkable in TENANT LIST statement counts. *)
let make_client ~port ~tenants ~depth i =
  let tenant = List.nth tenants (i mod List.length tenants) in
  let table = Printf.sprintf "t%d" (i mod List.length tenants) in
  let b = Buffer.create 1024 in
  let verbs = ref [] and ends = ref [] in
  let push verb line =
    Buffer.add_string b line;
    Buffer.add_char b '\n';
    verbs := verb :: !verbs;
    ends := Buffer.length b :: !ends
  in
  push "tenant" (Printf.sprintf "TENANT USE %s" tenant);
  for k = 1 to depth do
    if k mod 10 = 0 then push "stats" "STATS"
    else
      push "stmt"
        (Printf.sprintf "STMT SELECT %s_c0 FROM %s WHERE %s_c0 = %d" table
           table table
           ((i * depth) + k))
  done;
  let fd = connect port in
  Unix.set_nonblock fd;
  let n_cmds = List.length !verbs in
  {
    fd;
    out = Buffer.to_bytes b;
    off = 0;
    cmd_verbs = Array.of_list (List.rev !verbs);
    cmd_ends = Array.of_list (List.rev !ends);
    stamped = 0;
    send_times = Array.make n_cmds 0.;
    received = 0;
    inbuf = Buffer.create 1024;
    line_start = 0;
    errors = [];
    closed = false;
  }

let latencies : (string, float list ref) Hashtbl.t = Hashtbl.create 8
let bytes_out = ref 0
let bytes_in = ref 0

let record verb dt =
  let cell =
    match Hashtbl.find_opt latencies verb with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace latencies verb r;
      r
  in
  cell := dt :: !cell

let pump_writes c =
  let len = Bytes.length c.out in
  (try
     while c.off < len do
       let n = Unix.write c.fd c.out c.off (len - c.off) in
       c.off <- c.off + n;
       bytes_out := !bytes_out + n
     done
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  let now = Unix.gettimeofday () in
  while
    c.stamped < Array.length c.cmd_ends && c.cmd_ends.(c.stamped) <= c.off
  do
    c.send_times.(c.stamped) <- now;
    c.stamped <- c.stamped + 1
  done

let scratch = Bytes.create 65536

let finish ev c =
  if not c.closed then begin
    c.closed <- true;
    Evloop.remove ev c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let consume_lines ev c =
  let total = Array.length c.cmd_verbs in
  let s = Buffer.contents c.inbuf in
  let now = Unix.gettimeofday () in
  let i = ref c.line_start in
  (try
     while !i < String.length s do
       let j = String.index_from s !i '\n' in
       let line = String.sub s !i (j - !i) in
       let k = c.received in
       if k >= total then
         c.errors <- Printf.sprintf "unexpected extra reply %S" line :: c.errors
       else begin
         (if String.length line < 2 || String.sub line 0 2 <> "OK" then
            c.errors <-
              Printf.sprintf "%s: %s" c.cmd_verbs.(k) line :: c.errors);
         record c.cmd_verbs.(k) (now -. c.send_times.(k));
         c.received <- k + 1
       end;
       i := j + 1
     done
   with Not_found -> ());
  c.line_start <- !i;
  if c.received >= total then finish ev c

let pump_reads ev c =
  let rec go () =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 ->
      if not c.closed then begin
        c.errors <-
          Printf.sprintf "EOF after %d/%d replies" c.received
            (Array.length c.cmd_verbs)
          :: c.errors;
        finish ev c
      end
    | n ->
      bytes_in := !bytes_in + n;
      Buffer.add_subbytes c.inbuf scratch 0 n;
      consume_lines ev c;
      if not c.closed then go ()
  in
  try go () with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    c.errors <- "connection reset" :: c.errors;
    finish ev c

(* The fleet runs on the same readiness layer as the daemon: Auto
   resolves to epoll on Linux and poll elsewhere, so 2000+ client fds
   in one loop work where Unix.select would fail outright. *)
let drive_fleet clients =
  let t0 = Unix.gettimeofday () in
  let ev = Evloop.create () in
  let by_fd = Hashtbl.create (List.length clients) in
  List.iter
    (fun c ->
      Hashtbl.replace by_fd c.fd c;
      Evloop.add ev c.fd ~read:true ~write:true)
    clients;
  Printf.printf "client event loop backend: %s\n%!" (Evloop.backend_name ev);
  let live = ref (List.length clients) in
  while !live > 0 do
    if Unix.gettimeofday () -. t0 > deadline_s then
      failwith
        (Printf.sprintf "fleet did not drain within %.0fs (%d live)"
           deadline_s !live);
    let events = Evloop.wait ev ~timeout_s:1.0 in
    List.iter
      (fun (e : Evloop.event) ->
        match Hashtbl.find_opt by_fd e.ev_fd with
        | None -> ()
        | Some c ->
          if (not c.closed) && e.ev_write then begin
            pump_writes c;
            if c.off >= Bytes.length c.out then
              Evloop.modify ev c.fd ~read:true ~write:false
          end;
          if (not c.closed) && e.ev_read then begin
            pump_reads ev c;
            if c.closed then decr live
          end)
      events
  done;
  Evloop.close ev;
  Unix.gettimeofday () -. t0

(* ---- Control pass: epochs, tenant listing, metrics, shutdown ---- *)

type ctl = { ic : in_channel; oc : out_channel }

let ctl_connect port =
  let fd = connect port in
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let ctl_request c line =
  output_string c.oc (line ^ "\n");
  flush c.oc;
  input_line c.ic

let ctl_expect c what prefix line =
  let r = ctl_request c line in
  if
    String.length r < String.length prefix
    || String.sub r 0 (String.length prefix) <> prefix
  then failwith (Printf.sprintf "%s: expected %S..., got %S" what prefix r);
  r

let ctl_body c head =
  Scanf.sscanf head "OK %d" (fun n -> List.init n (fun _ -> input_line c.ic))

let control_pass port tenants =
  let c = ctl_connect port in
  List.iter
    (fun t ->
      ignore (ctl_expect c ("use " ^ t) "OK tenant" ("TENANT USE " ^ t));
      let t1 = Unix.gettimeofday () in
      ignore (ctl_expect c ("epoch on " ^ t) "OK epoch" "EPOCH");
      record "epoch" (Unix.gettimeofday () -. t1))
    tenants;
  let listing = ctl_body c (ctl_expect c "tenant list" "OK " "TENANT LIST") in
  let metrics =
    List.map
      (fun line ->
        match String.rindex_opt line ' ' with
        | None -> failwith ("unparseable metric line: " ^ line)
        | Some i ->
          ( String.sub line 0 i,
            float_of_string
              (String.sub line (i + 1) (String.length line - i - 1)) ))
      (ctl_body c (ctl_expect c "metrics" "OK " "METRICS"))
  in
  ignore (ctl_expect c "shutdown" "OK shutting down" "SHUTDOWN");
  (listing, metrics)

(* ---- Phase 2: dispatch isolation under a slow epoch ---- *)

type isolation = {
  iso_delay_ms : int;
  iso_baseline_p99_ms : float;
  iso_during_p99_ms : float;
  iso_epoch_reply_s : float;
}

let sorted_p99 samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  match Array.length a with
  | 0 -> 0.
  | n -> a.(min (n - 1) (int_of_float (0.99 *. float_of_int n)))

(* Tenant B's forced epoch is slowed by IM_EPOCH_DELAY_MS while tenant
   A keeps issuing sequential STMTs. With epochs offloaded to a worker
   domain, A's round-trips must not see the delay. *)
let isolation_pass () =
  let delay_ms = getenv_int "IM_SERVE_EPOCH_DELAY_MS" 750 in
  let d =
    start_daemon
      ~env:[ Printf.sprintf "IM_EPOCH_DELAY_MS=%d" delay_ms ]
      ~tenants:2 ~max_connections:16 ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] d.pid))
    (fun () ->
      let ca = ctl_connect d.port in
      let cb = ctl_connect d.port in
      ignore (ctl_expect cb "bind B" "OK tenant" "TENANT USE t2");
      (* Seed both windows past the bootstrap epoch (which is itself
         delayed — pay that once per tenant up front). *)
      let seed c table =
        for k = 1 to 30 do
          ignore
            (ctl_expect c "seed" "OK"
               (Printf.sprintf "STMT SELECT %s_c0 FROM %s WHERE %s_c0 = %d"
                  table table table k))
        done
      in
      seed ca "t0";
      seed cb "t1";
      let timed_stmt c table k =
        let t0 = Unix.gettimeofday () in
        ignore
          (ctl_expect c "stmt" "OK"
             (Printf.sprintf "STMT SELECT %s_c1 FROM %s WHERE %s_c1 = %d"
                table table table k));
        Unix.gettimeofday () -. t0
      in
      let baseline = List.init 200 (fun k -> timed_stmt ca "t0" k) in
      (* Kick off B's slow epoch without reading the reply, then keep
         hammering A while it is in flight on the worker domain. *)
      let t_epoch = Unix.gettimeofday () in
      output_string cb.oc "EPOCH\n";
      flush cb.oc;
      let during = List.init 200 (fun k -> timed_stmt ca "t0" (1000 + k)) in
      let reply = input_line cb.ic in
      let epoch_s = Unix.gettimeofday () -. t_epoch in
      if String.length reply < 8 || String.sub reply 0 8 <> "OK epoch" then
        failwith ("B's forced epoch failed: " ^ reply);
      if epoch_s < float_of_int delay_ms /. 1000. *. 0.9 then
        failwith
          (Printf.sprintf
             "epoch replied in %.3fs — the %dms delay was not injected"
             epoch_s delay_ms);
      ignore (ctl_expect ca "shutdown" "OK shutting down" "SHUTDOWN");
      let p99_base = sorted_p99 baseline and p99_during = sorted_p99 during in
      (* The acceptance gate: a slow epoch on one tenant must not show
         up in another tenant's client-observed latency. The 25ms
         floor absorbs scheduler jitter on sub-ms baselines. *)
      let ceiling = Float.max (2. *. p99_base) 0.025 in
      if p99_during > ceiling then
        failwith
          (Printf.sprintf
             "isolation violated: bystander STMT p99 %.2fms during a %dms \
              epoch (baseline %.2fms, ceiling %.2fms)"
             (p99_during *. 1e3) delay_ms (p99_base *. 1e3) (ceiling *. 1e3));
      Printf.printf
        "isolation: bystander STMT p99 %.3fms during B's %dms epoch \
         (baseline %.3fms, epoch replied in %.3fs)\n%!"
        (p99_during *. 1e3) delay_ms (p99_base *. 1e3) epoch_s;
      (try
         while true do
           ignore (input_line d.stdout)
         done
       with End_of_file -> ());
      {
        iso_delay_ms = delay_ms;
        iso_baseline_p99_ms = p99_base *. 1e3;
        iso_during_p99_ms = p99_during *. 1e3;
        iso_epoch_reply_s = epoch_s;
      })

(* ---- Reporting ---- *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let metric metrics name =
  match List.assoc_opt name metrics with
  | Some v -> v
  | None -> failwith ("daemon did not export metric " ^ name)

let run () =
  Exp_common.section
    "EXP-SERVE multi-tenant daemon: concurrent pipelined clients";
  let clients_n = n_clients () and tenants_n = n_tenants () in
  let depth = depth () in
  let tenants = tenant_names tenants_n in
  (* Room for every workload client plus control/stdio slack, both here
     and in the daemon (which inherits our raised RLIMIT_NOFILE). *)
  let needed = clients_n + 64 in
  let fd_limit = Evloop.raise_fd_limit needed in
  if fd_limit < needed then
    failwith
      (Printf.sprintf
         "RLIMIT_NOFILE %d < %d needed for %d clients — raise the hard \
          limit (`ulimit -n`) or lower IM_SERVE_CLIENTS"
         fd_limit needed clients_n);
  let max_connections =
    if backend_name () = "select" then begin
      if clients_n > 1000 then
        failwith
          "IM_SERVE_BACKEND=select caps at ~1000 clients (FD_SETSIZE); \
           lower IM_SERVE_CLIENTS or pick epoll/poll/auto";
      min 1010 (clients_n + 8)
    end
    else clients_n + 8
  in
  let d = start_daemon ~tenants:tenants_n ~max_connections () in
  let listing, daemon_metrics, elapsed_s =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] d.pid))
      (fun () ->
        Printf.printf "connecting %d clients across %d tenants (depth %d)\n%!"
          clients_n tenants_n depth;
        let clients =
          List.init clients_n (fun i ->
              make_client ~port:d.port ~tenants ~depth i)
        in
        let elapsed_s = drive_fleet clients in
        (* Gate: zero reply loss, zero error replies. *)
        let failures =
          List.concat_map
            (fun c -> List.map (fun e -> e) c.errors)
            clients
        in
        if failures <> [] then
          failwith
            (Printf.sprintf "%d client failures, first: %s"
               (List.length failures) (List.hd failures));
        let listing, daemon_metrics = control_pass d.port tenants in
        (listing, daemon_metrics, elapsed_s))
  in
  (* Drain the daemon's shutdown report so its exit is clean. *)
  (try
     while true do
       ignore (input_line d.stdout)
     done
   with End_of_file -> ());
  Printf.printf "drained %d clients in %.2fs (%.0f commands/s)\n"
    clients_n elapsed_s
    (float_of_int (clients_n * (depth + 1)) /. elapsed_s);
  print_endline "tenant listing at the end of the run:";
  List.iter (fun l -> Printf.printf "  %s\n" l) listing;
  (* Daemon-side gates. *)
  if metric daemon_metrics "server_write_errors_total" <> 0. then
    failwith "daemon counted write errors under clean clients";
  if metric daemon_metrics "server_backpressure_closed_total" <> 0. then
    failwith "daemon hit backpressure against draining clients";
  if metric daemon_metrics "server_connections_rejected_total" <> 0. then
    failwith "daemon rejected connections under the configured cap";
  let high_water = metric daemon_metrics "server_out_queue_max_bytes" in
  if high_water > 1_048_576. then
    failwith
      (Printf.sprintf "output queue high-water %.0f exceeds the 1MiB cap"
         high_water);
  let iso = isolation_pass () in
  let verb_rows, verb_json =
    List.split
      (List.map
         (fun (verb, cell) ->
           let a = Array.of_list !cell in
           Array.sort compare a;
           let p50 = percentile a 0.5 and p99 = percentile a 0.99 in
           ( [
               verb;
               string_of_int (Array.length a);
               Printf.sprintf "%.2f" (p50 *. 1e3);
               Printf.sprintf "%.2f" (p99 *. 1e3);
             ],
             Printf.sprintf
               "    {\"verb\": \"%s\", \"count\": %d, \"p50_ms\": %.3f, \
                \"p99_ms\": %.3f}"
               verb (Array.length a) (p50 *. 1e3) (p99 *. 1e3) ))
         (List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) latencies [])))
  in
  Exp_common.print_table
    ~title:
      "Client-observed latency per verb (pipelined; from last byte sent)"
    ~header:[ "verb"; "count"; "p50 ms"; "p99 ms" ]
    ~rows:verb_rows;
  Printf.printf "bytes out %d, bytes in %d (client side)\n" !bytes_out
    !bytes_in;
  let json_escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let out =
    match Sys.getenv_opt "IM_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_serve.json"
  in
  let oc = open_out out in
  output_string oc
    (Printf.sprintf
       "{\n  \"experiment\": \"serve\",\n  \"clients\": %d,\n\
       \  \"event_backend\": \"%s\",\n\
       \  \"tenants\": [%s],\n  \"depth\": %d,\n  \"elapsed_s\": %.3f,\n\
       \  \"commands_per_s\": %.1f,\n  \"bytes_out\": %d,\n\
       \  \"bytes_in\": %d,\n  \"verbs\": [\n%s\n  ],\n\
       \  \"isolation\": {\"epoch_delay_ms\": %d, \"stmt_p99_baseline_ms\": \
        %.3f, \"stmt_p99_during_epoch_ms\": %.3f, \"epoch_reply_s\": %.3f},\n\
       \  \"tenant_listing\": [%s],\n  \"daemon_metrics\": {\n%s\n  }\n}\n"
       clients_n (json_escape d.backend)
       (String.concat ", "
          (List.map (fun t -> Printf.sprintf "\"%s\"" t) tenants))
       depth elapsed_s
       (float_of_int (clients_n * (depth + 1)) /. elapsed_s)
       !bytes_out !bytes_in
       (String.concat ",\n" verb_json)
       iso.iso_delay_ms iso.iso_baseline_p99_ms iso.iso_during_p99_ms
       iso.iso_epoch_reply_s
       (String.concat ", "
          (List.map (fun l -> Printf.sprintf "\"%s\"" (json_escape l)) listing))
       (String.concat ",\n"
          (List.map
             (fun (name, v) ->
               Printf.sprintf "    \"%s\": %g" (json_escape name) v)
             daemon_metrics)));
  close_out oc;
  Printf.printf "wrote %s\n" out
