(* EXP-SCALE — workload compression + batched scoring at 100k-statement
   scale.

   Three parts:

   1. Offline streaming: N statements (IM_SCALE_N, default 100,000)
      drawn from a pool of distinct ragsgen queries are written to a
      SQL script and streamed back through [Workload_file.fold] into
      the [Im_scale.Scale] compactor — one pass, no materialized
      workload. Hard asserts: the measured deviation
      |Cost(W,C) - Cost(Ŵ,C)| on reference configurations is within
      the compactor's reported bound, the bound is within the ε
      budget, and the optimizer-invocation count stays sublinear in N.
      At N >= 100k the compression ratio must clear 50x.

   2. Online: the same statement stream is fed to the online tuning
      service with [o_compress] set, so every epoch tunes a compressed
      window; reports tuning latency and the daemon-visible scale
      stats.

   3. ε = 0 identity: on the fig5/6 setups (three databases, greedy
      and exhaustive, N = 5 initial configurations), [--compress 0]
      must reproduce the uncompressed merged configuration exactly
      (items, pages, cost) — hard-asserted.

   JSON artifact to $IM_BENCH_OUT (default BENCH_scale.json) for
   dev-check. *)

module Database = Im_catalog.Database
module Config = Im_catalog.Config
module Index = Im_catalog.Index
module Query = Im_sqlir.Query
module Workload = Im_workload.Workload
module Workload_file = Im_workload.Workload_file
module Scale = Im_scale.Scale
module Service = Im_costsvc.Service
module Search = Im_merging.Search
module Cost_eval = Im_merging.Cost_eval
module Merge = Im_merging.Merge
module Optimizer = Im_optimizer.Optimizer

let statements_n =
  match Sys.getenv_opt "IM_SCALE_N" with
  | Some s when s <> "" -> int_of_string s
  | _ -> 100_000

(* The 1M intake rung (IM_SCALE_N=1000000) is proven by the offline
   streaming leg; the online leg replays at most 100k of the same
   stream — its intake microbenchmark scales linearly and the epoch
   cadence above 100k adds wall clock without new information. *)
let online_n = min statements_n 100_000

let eps = 0.05
let pool_size = 60
let min_ratio = 50.0

(* ---- Part 1: offline streaming compression ---- *)

(* The statement stream: a pool of distinct ragsgen queries replayed
   [statements_n] times with a skewed deterministic pick — the shape of
   a production log, where a bounded set of templates dominates. *)
let stream_pool db =
  Array.of_list
    (Workload.queries
       (Im_workload.Ragsgen.generate db ~rng:(Im_util.Rng.create 7)
          ~n:pool_size))

let pick rng n =
  (* Mild skew: half the mass on the first quarter of the pool. *)
  let quarter = max 1 (n / 4) in
  if Im_util.Rng.int rng 2 = 0 then Im_util.Rng.int rng quarter
  else Im_util.Rng.int rng n

(* Shift every integer literal in [sql] by [delta], leaving identifiers
   (which embed digits, e.g. t0_c15) untouched: same template, different
   constants — the near-duplicates a production log is full of, and the
   case the compactor's deviation bound exists for. *)
let mutate_constants ~delta sql =
  let n = String.length sql in
  let buf = Buffer.create (n + 8) in
  let is_ident c =
    c = '_'
    || (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
  in
  let i = ref 0 in
  let prev_ident = ref false in
  while !i < n do
    let c = sql.[!i] in
    if c >= '0' && c <= '9' && not !prev_ident then begin
      let j = ref !i in
      while !j < n && sql.[!j] >= '0' && sql.[!j] <= '9' do
        incr j
      done;
      let lit = String.sub sql !i (!j - !i) in
      (match int_of_string_opt lit with
       | Some v -> Buffer.add_string buf (string_of_int (v + delta))
       | None -> Buffer.add_string buf lit);
      prev_ident := true;
      i := !j
    end
    else begin
      Buffer.add_char buf c;
      prev_ident := is_ident c;
      incr i
    end
  done;
  Buffer.contents buf

(* The k-th statement of the deterministic stream: a pool pick with a
   small constant shift (shift 0 = an exact duplicate). *)
let next_statement rng texts =
  let sql = texts.(pick rng (Array.length texts)) in
  match Im_util.Rng.int rng 8 with
  | 0 -> sql
  | delta -> mutate_constants ~delta sql

let write_stream pool path =
  let rng = Im_util.Rng.create 99 in
  let texts = Array.map Query.to_sql pool in
  let oc = open_out path in
  for _ = 1 to statements_n do
    output_string oc (next_statement rng texts);
    output_string oc ";\n"
  done;
  close_out oc

let reference_configs db pool =
  let w = Workload.make (Array.to_list pool) in
  [
    ("empty", Config.empty);
    ("initial-8", Im_tuning.Initial_config.build db w
       ~rng:(Im_util.Rng.create 3) ~n:8);
    ("union", Im_tuning.Initial_config.per_query_union db w);
  ]

let run_offline db =
  let pool = stream_pool db in
  let path = Filename.temp_file "im_scale_stream" ".sql" in
  write_stream pool path;
  let svc = Service.create ~derive:true db in
  let compactor = Scale.create ~eps svc in
  (* Exact per-distinct counts, so Cost(W,C) is computable without
     materializing the 100k-entry workload. *)
  let counts : (int, int * Query.t) Hashtbl.t = Hashtbl.create 256 in
  let invocations_before = Optimizer.invocations () in
  let streamed, stream_s =
    Im_util.Stopwatch.time (fun () ->
        match
          Workload_file.fold ~schema:(Database.schema db) path ~init:0
            ~f:(fun n q freq ->
              Scale.observe compactor ?freq q;
              let id = Query.intern q in
              (match Hashtbl.find_opt counts id with
               | Some (c, rep) -> Hashtbl.replace counts id (c + 1, rep)
               | None -> Hashtbl.add counts id (1, q));
              n + 1)
        with
        | Ok n -> n
        | Error m -> failwith ("EXP-SCALE: stream failed: " ^ m))
  in
  Sys.remove path;
  if streamed <> statements_n then
    failwith
      (Printf.sprintf "EXP-SCALE: streamed %d statements, expected %d"
         streamed statements_n);
  let st = Scale.stats compactor in
  let ratio = Scale.fold_ratio st in
  if st.Scale.st_eps_bound > eps +. 1e-12 then
    failwith
      (Printf.sprintf "EXP-SCALE: reported bound %.6f exceeds budget %g"
         st.Scale.st_eps_bound eps);
  if statements_n >= 100_000 && ratio < min_ratio then
    failwith
      (Printf.sprintf
         "EXP-SCALE: compression ratio %.1fx below the %.0fx acceptance bar"
         ratio min_ratio);
  (* Exact vs compressed costs on the reference configurations. *)
  let refs = reference_configs db pool in
  let exact_cost config =
    Hashtbl.fold
      (fun _ (c, q) acc ->
        acc +. (float_of_int c *. Service.query_cost svc config q))
      counts 0.
  in
  let scores, score_s =
    Im_util.Stopwatch.time (fun () ->
        Scale.score compactor (List.map snd refs))
  in
  let max_dev = ref 0. in
  List.iteri
    (fun i (cname, config) ->
      let exact = exact_cost config in
      let approx = scores.(i) in
      let dev = Float.abs (approx -. exact) in
      if exact > 0. then max_dev := Float.max !max_dev (dev /. exact);
      if dev > (st.Scale.st_eps_bound *. exact) +. 1e-6 then
        failwith
          (Printf.sprintf
             "EXP-SCALE: %s: deviation %.6f exceeds bound %.6f of exact \
              cost %.1f"
             cname (dev /. exact) st.Scale.st_eps_bound exact))
    refs;
  let invocations = Optimizer.invocations () - invocations_before in
  let invocation_bar = max (statements_n / 10) 2_000 in
  if invocations > invocation_bar then
    failwith
      (Printf.sprintf
         "EXP-SCALE: %d optimizer invocations for %d statements is not \
          sublinear (bar %d)"
         invocations statements_n invocation_bar);
  Exp_common.print_table ~title:"Offline streaming compression (Synthetic1)"
    ~header:[ "statements"; "buckets"; "ratio"; "eps bound"; "max dev";
              "opt calls"; "stream s"; "score s" ]
    ~rows:
      [
        [
          string_of_int streamed;
          string_of_int st.Scale.st_buckets;
          Printf.sprintf "%.1fx" ratio;
          Printf.sprintf "%.5f" st.Scale.st_eps_bound;
          Printf.sprintf "%.5f" !max_dev;
          string_of_int invocations;
          Printf.sprintf "%.2f" stream_s;
          Printf.sprintf "%.2f" score_s;
        ];
      ];
  (streamed, st, ratio, !max_dev, invocations, invocation_bar, stream_s,
   score_s)

(* ---- Part 2: the online service with a compressed window ---- *)

let run_online db =
  let pool = stream_pool db in
  let texts = Array.map Query.to_sql pool in
  let budget_pages = max 1 (Database.data_pages db / 2) in
  let options =
    {
      (Im_online.Service.default_options ~budget_pages) with
      Im_online.Service.o_capacity = 64;
      o_check_every = max 500 (online_n / 20);
      o_warmup = max 100 (online_n / 100);
      o_compress = Some eps;
    }
  in
  let service = Im_online.Service.create ~options db ~budget_pages in
  let rng = Im_util.Rng.create 99 in
  let (), feed_s =
    Im_util.Stopwatch.time (fun () ->
        for _ = 1 to online_n do
          match Im_online.Service.feed service (next_statement rng texts) with
          | Im_online.Service.Rejected m ->
            failwith ("EXP-SCALE: online reject: " ^ m)
          | Im_online.Service.Observed _ -> ()
        done)
  in
  (match Im_online.Service.force_epoch service with
   | Ok _ -> ()
   | Error m -> failwith ("EXP-SCALE: forced epoch failed: " ^ m));
  let epochs = Im_online.Service.epochs service in
  let n_epochs = List.length epochs in
  let epoch_s =
    Im_util.List_ext.sum_by_f
      (fun (o : Im_online.Epoch.outcome) -> o.Im_online.Epoch.e_elapsed_s)
      epochs
  in
  let last_scale =
    match
      List.find_map
        (fun (o : Im_online.Epoch.outcome) -> o.Im_online.Epoch.e_scale)
        epochs
    with
    | Some st -> st
    | None -> failwith "EXP-SCALE: no epoch carried compactor stats"
  in
  Exp_common.print_table
    ~title:"Online tuning over a compressed window (Synthetic1)"
    ~header:[ "statements"; "epochs"; "tuning s"; "s/epoch"; "intake s";
              "last buckets"; "last eps bound" ]
    ~rows:
      [
        [
          string_of_int (Im_online.Service.statements service);
          string_of_int n_epochs;
          Printf.sprintf "%.2f" epoch_s;
          Printf.sprintf "%.3f" (epoch_s /. float_of_int (max 1 n_epochs));
          Printf.sprintf "%.2f" feed_s;
          string_of_int last_scale.Scale.st_buckets;
          Printf.sprintf "%.5f" last_scale.Scale.st_eps_bound;
        ];
      ];
  (n_epochs, epoch_s, feed_s, last_scale)

(* ---- Part 3: ε = 0 identity on the fig5/6 setups ---- *)

let fingerprint items =
  String.concat "; "
    (List.map
       (fun (it : Merge.item) ->
         Printf.sprintf "%s<-[%s]"
           (Index.to_string it.Merge.it_index)
           (String.concat ", " (List.map Index.to_string it.Merge.it_parents)))
       items)

let run_identity () =
  let rows =
    List.concat_map
      (fun (name, db) ->
        let workload = Exp_common.complex_workload db ~n:30 ~seed:1 in
        let initial = Exp_common.initial_config db workload ~n:5 ~seed:2 in
        List.map
          (fun (sname, strategy) ->
            let go compress =
              Search.run ?compress ~cost_model:Cost_eval.Optimizer_estimated
                ~cost_constraint:0.10 db workload ~initial strategy
            in
            let plain = go None in
            let compressed = go (Some 0.0) in
            if
              not
                (String.equal
                   (fingerprint plain.Search.o_items)
                   (fingerprint compressed.Search.o_items)
                && plain.Search.o_final_pages
                   = compressed.Search.o_final_pages
                && Option.equal Float.equal plain.Search.o_final_cost
                     compressed.Search.o_final_cost)
            then
              failwith
                (Printf.sprintf
                   "EXP-SCALE: %s/%s: --compress 0 diverges from the \
                    uncompressed search (%d vs %d pages; %s vs %s)"
                   name sname plain.Search.o_final_pages
                   compressed.Search.o_final_pages
                   (fingerprint plain.Search.o_items)
                   (fingerprint compressed.Search.o_items));
            [ name; sname;
              string_of_int compressed.Search.o_final_pages; "identical" ])
          [
            ("greedy", Search.Greedy);
            ("exhaustive", Search.Exhaustive_search { config_limit = 100_000 });
          ])
      (Exp_common.databases ())
  in
  Exp_common.print_table
    ~title:"eps = 0 bit-identity on the fig5/6 setups"
    ~header:[ "db"; "strategy"; "pages"; "result" ]
    ~rows

let run () =
  Exp_common.section
    (Printf.sprintf
       "EXP-SCALE workload compression + batched scoring (N = %d, eps = %g)"
       statements_n eps);
  let db = Lazy.force Exp_common.synthetic1 in
  let ( streamed, st, ratio, max_dev, invocations, invocation_bar, stream_s,
        score_s ) =
    run_offline db
  in
  let n_epochs, epoch_s, feed_s, online_scale = run_online db in
  run_identity ();
  let out =
    match Sys.getenv_opt "IM_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_scale.json"
  in
  let oc = open_out out in
  output_string oc
    (Printf.sprintf
       "{\n  \"experiment\": \"scale\",\n  \"statements\": %d,\n\
       \  \"eps_budget\": %g,\n  \"buckets\": %d,\n  \"ratio\": %.3f,\n\
       \  \"min_ratio\": %.1f,\n  \"eps_bound\": %.6f,\n\
       \  \"max_rel_deviation\": %.6f,\n  \"exact_folds\": %d,\n\
       \  \"approx_folds\": %d,\n  \"probe_costs\": %d,\n\
       \  \"opt_invocations\": %d,\n  \"opt_invocation_bar\": %d,\n\
       \  \"stream_s\": %.3f,\n  \"stream_us_per_stmt\": %.2f,\n\
       \  \"score_s\": %.3f,\n\
       \  \"online\": {\"statements\": %d, \"epochs\": %d, \"tuning_s\": \
        %.3f, \"intake_s\": %.3f, \"buckets\": %d, \"eps_bound\": %.6f},\n\
       \  \"identity\": \"ok\",\n  \"metrics\": %s\n}\n"
       streamed eps st.Scale.st_buckets ratio min_ratio
       st.Scale.st_eps_bound max_dev st.Scale.st_exact_folds
       st.Scale.st_approx_folds st.Scale.st_probe_costs invocations
       invocation_bar stream_s
       (stream_s /. float_of_int (max 1 streamed) *. 1e6)
       score_s online_n n_epochs epoch_s feed_s
       online_scale.Scale.st_buckets online_scale.Scale.st_eps_bound
       (Im_obs.Metrics.to_json ()));
  close_out oc;
  Printf.printf "\nwrote %s\n" out
