(* index-merge: command-line index merging utility.

   The executable mirrors the paper's client utility for SQL Server 7.0:
   given a database, a workload and an initial configuration, it finds a
   storage-minimal merged configuration under a cost constraint.

   Subcommands:
     info     describe a generated database
     tune     per-query index recommendations for a workload
     merge    run index merging end to end (the main mode)
     explain  show optimizer plans for workload queries under a config
     serve    online index-tuning daemon (streaming intake over TCP)

   Databases and workloads are generated deterministically from seeds,
   so runs are reproducible. *)

open Cmdliner

let version = "1.1.0"

module Database = Im_catalog.Database
module Index = Im_catalog.Index
module Schema = Im_sqlir.Schema
module Workload = Im_workload.Workload
module Search = Im_merging.Search
module Cost_eval = Im_merging.Cost_eval
module Merge_pair = Im_merging.Merge_pair

(* ---- Shared arguments ---- *)

let db_arg =
  let doc =
    "Database: tpcd, synthetic1, synthetic2, or csv (with --schema and \
     --data)."
  in
  Arg.(value & opt string "tpcd" & info [ "d"; "database" ] ~docv:"DB" ~doc)

let schema_arg =
  let doc = "DDL schema file (CREATE TABLE statements), for -d csv." in
  Arg.(value & opt (some string) None & info [ "schema" ] ~docv:"FILE" ~doc)

let data_arg =
  let doc = "Directory of <table>.csv files, for -d csv." in
  Arg.(value & opt (some string) None & info [ "data" ] ~docv:"DIR" ~doc)

let sf_arg =
  let doc = "TPC-D scale factor (ignored for synthetic databases)." in
  Arg.(value & opt float 0.004 & info [ "sf" ] ~docv:"SF" ~doc)

let seed_arg =
  let doc = "Seed for data, workload and tuning randomness." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let workload_arg =
  let doc = "Workload: complex, projection, or tpcd17 (TPC-D only)." in
  Arg.(value & opt string "complex" & info [ "w"; "workload" ] ~docv:"KIND" ~doc)

let queries_arg =
  let doc = "Number of generated queries (complex/projection workloads)." in
  Arg.(value & opt int 30 & info [ "q"; "queries" ] ~docv:"N" ~doc)

let initial_arg =
  let doc =
    "Size of the initial configuration built by random per-query tuning; 0 \
     tunes every query and takes the union."
  in
  Arg.(value & opt int 0 & info [ "n"; "initial" ] ~docv:"N" ~doc)

let constraint_arg =
  let doc = "Cost constraint: allowed relative workload-cost increase." in
  Arg.(value & opt float 0.10 & info [ "c"; "constraint" ] ~docv:"FRACTION" ~doc)

let cost_model_arg =
  let doc = "Cost evaluation: optimizer, external, or nocost." in
  Arg.(value & opt string "optimizer" & info [ "cost-model" ] ~docv:"MODEL" ~doc)

let merge_pair_arg =
  let doc = "MergePair procedure: cost, syntactic, or exhaustive." in
  Arg.(value & opt string "cost" & info [ "merge-pair" ] ~docv:"PROC" ~doc)

let strategy_arg =
  let doc = "Search strategy: greedy or exhaustive." in
  Arg.(value & opt string "greedy" & info [ "strategy" ] ~docv:"STRAT" ~doc)

let updates_arg =
  let doc =
    "Attach a batch-insert profile to the workload: 'table:rows', \
     repeatable. Numeric cost models then charge configurations for \
     index maintenance."
  in
  Arg.(value & opt_all string [] & info [ "u"; "updates" ] ~docv:"TBL:ROWS" ~doc)

let parse_updates specs =
  let parse one =
    match String.split_on_char ':' one with
    | [ tbl; rows ] ->
      (match int_of_string_opt rows with
       | Some r when r > 0 -> Ok (tbl, r)
       | Some _ | None -> Error (Printf.sprintf "bad row count in %S" one))
    | _ -> Error (Printf.sprintf "expected table:rows, got %S" one)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
      (match parse s with Ok u -> go (u :: acc) rest | Error _ as e -> e)
  in
  go [] specs

let workload_file_arg =
  let doc =
    "Load the workload from a SQL script file (semicolon-terminated SELECT \
     statements, optional '-- freq: N' annotations) instead of generating \
     one."
  in
  Arg.(value & opt (some string) None & info [ "f"; "workload-file" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the command finishes, print the process metrics registry \
     (counters, gauges, latency percentiles) in its stable dump order."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains for parallel candidate evaluation (0 = sequential). \
     Results are bit-identical at any setting. Default: the IM_DOMAINS \
     environment variable if set, else the machine's recommended domain \
     count minus one."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let no_derive_arg =
  let doc =
    "Disable atomic cost derivation: answer every what-if cache miss by \
     running the full optimizer instead of assembling cached access-path \
     atoms. Results are bit-identical either way; this is the escape hatch \
     (and the baseline for the derive benchmark)."
  in
  Arg.(value & flag & info [ "no-derive" ] ~doc)

let compress_arg =
  let doc =
    "Compress the workload before tuning: statements bucket by \
     physical-design signature under deviation budget $(docv) (a \
     fraction; 0 folds only canonically identical statements and \
     keeps results bit-identical on duplicate-free workloads). \
     Reported costs refer to the compressed workload, within the \
     printed bound."
  in
  Arg.(value & opt (some float) None & info [ "compress" ] ~docv:"EPS" ~doc)

let prune_support_arg =
  let doc =
    "Prune merge candidates against the workload's frequent column sets: \
     mine per-table column-set supports from the statement stream and \
     keep only merge pairs whose merged column set carries at least \
     fraction $(docv) of the workload mass (plus the always-kept \
     containment and no-evidence survivors). 0 or unset disables pruning \
     and is bit-identical to not passing the flag."
  in
  Arg.(
    value & opt (some float) None & info [ "prune-support" ] ~docv:"S" ~doc)

let apply_domains = function
  | None -> ()
  | Some n when n >= 0 -> Im_par.Pool.set_default_domains n
  | Some n ->
    prerr_endline
      (Printf.sprintf "index-merge: --domains must be >= 0, got %d" n);
    exit 2

let maybe_dump_metrics enabled =
  if enabled then begin
    print_endline "-- metrics --";
    print_string (Im_obs.Metrics.dump ())
  end

(* ---- Construction helpers ---- *)

let build_database ?schema_file ?data_dir name sf seed =
  match String.lowercase_ascii name with
  | "tpcd" | "tpc-d" -> Ok (Im_workload.Tpcd.database ~sf ~seed ())
  | "synthetic1" ->
    Ok (Im_workload.Synthetic.database ~seed Im_workload.Synthetic.synthetic1)
  | "synthetic2" ->
    Ok (Im_workload.Synthetic.database ~seed Im_workload.Synthetic.synthetic2)
  | "csv" ->
    (match (schema_file, data_dir) with
     | Some schema_file, Some data_dir ->
       Im_io.Loader.load ~schema_file ~data_dir
     | _ -> Error "-d csv requires --schema FILE and --data DIR")
  | other -> Error (Printf.sprintf "unknown database %S" other)

let build_workload ?file db kind n seed =
  match file with
  | Some path -> Im_workload.Workload_file.load ~schema:(Database.schema db) path
  | None ->
    let rng = Im_util.Rng.create ((seed * 7) + 3) in
    (match String.lowercase_ascii kind with
     | "complex" -> Ok (Im_workload.Ragsgen.generate db ~rng ~n)
     | "projection" -> Ok (Im_workload.Projgen.generate db ~rng ~n)
     | "tpcd17" ->
       if Schema.mem_table (Database.schema db) "lineitem" then
         Ok (Im_workload.Tpcd_queries.workload ())
       else Error "tpcd17 workload requires the tpcd database"
     | other -> Error (Printf.sprintf "unknown workload %S" other))

let build_initial db workload n seed =
  if n <= 0 then Im_tuning.Initial_config.per_query_union db workload
  else
    Im_tuning.Initial_config.build db workload
      ~rng:(Im_util.Rng.create ((seed * 13) + 5))
      ~n

let parse_cost_model = function
  | "optimizer" -> Ok Cost_eval.Optimizer_estimated
  | "external" -> Ok Cost_eval.External
  | "nocost" | "no-cost" -> Ok Cost_eval.default_no_cost
  | other -> Error (Printf.sprintf "unknown cost model %S" other)

let parse_merge_pair = function
  | "cost" -> Ok Merge_pair.Cost_based
  | "syntactic" -> Ok Merge_pair.Syntactic
  | "exhaustive" -> Ok (Merge_pair.Exhaustive { perm_limit = 720 })
  | other -> Error (Printf.sprintf "unknown merge-pair procedure %S" other)

let parse_strategy = function
  | "greedy" -> Ok Search.Greedy
  | "exhaustive" -> Ok (Search.Exhaustive_search { config_limit = 100_000 })
  | other -> Error (Printf.sprintf "unknown strategy %S" other)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("index-merge: " ^ msg);
    exit 2

(* ---- info ---- *)

let run_info db_name sf seed schema_file data_dir =
  let db = or_die (build_database ?schema_file ?data_dir db_name sf seed) in
  let schema = Database.schema db in
  Printf.printf "database %s: %d tables, %d data pages\n" db_name
    (List.length schema.Schema.tables)
    (Database.data_pages db);
  List.iter
    (fun (t : Schema.table) ->
      Printf.printf "  %-12s %8d rows  %6d pages  %3d columns  row width %d\n"
        t.Schema.tbl_name
        (Database.row_count db t.Schema.tbl_name)
        (Database.table_pages db t.Schema.tbl_name)
        (List.length t.Schema.tbl_columns)
        (Schema.row_width t))
    schema.Schema.tables

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a generated database.")
    Term.(const run_info $ db_arg $ sf_arg $ seed_arg $ schema_arg $ data_arg)

(* ---- tune ---- *)

let run_tune db_name sf seed wl_kind n_queries file compress prune_support
    schema_file data_dir domains no_derive metrics =
  apply_domains domains;
  let db = or_die (build_database ?schema_file ?data_dir db_name sf seed) in
  let workload = or_die (build_workload ?file db wl_kind n_queries seed) in
  (* One deriving what-if service answers every greedy probe across all
     queries (lock-striped to match the pool); costs are bit-identical
     to the direct optimizer calls of --no-derive. *)
  let pool = Im_par.Pool.default () in
  let shards = max 1 (4 * Im_par.Pool.domain_count pool) in
  let svc =
    Im_costsvc.Service.create ~shards ~derive:(not no_derive) db
  in
  let miner =
    match prune_support with
    | Some s when s > 0. -> Some (Im_mine.Mine.create ())
    | _ -> None
  in
  let workload =
    match compress with
    | None ->
      Option.iter (fun m -> Im_mine.Mine.observe_workload m workload) miner;
      workload
    | Some eps ->
      (* The miner rides the compactor's admission stream: bucket
         leaders weighted by folded frequency, so the frontier reflects
         the compressed workload the wizard actually tunes. *)
      let w, st =
        Im_scale.Scale.compress_workload ?mine:miner ~eps svc workload
      in
      Printf.printf
        "compressed %d -> %d statements (%.1fx, bound eps %.4g of budget %g)\n"
        st.Im_scale.Scale.st_statements st.Im_scale.Scale.st_buckets
        (Im_scale.Scale.fold_ratio st)
        st.Im_scale.Scale.st_eps_bound st.Im_scale.Scale.st_eps_budget;
      w
  in
  let prune =
    match (miner, prune_support) with
    | Some m, Some s -> Some (Im_mine.Mine.frontier m ~support:s)
    | _ -> None
  in
  (* Tune every query on the pool, then print in workload order. *)
  let tuned =
    Im_par.Pool.parallel_map pool
      (fun q ->
        ( q,
          Im_tuning.Wizard.tune_query
            ~query_cost:(Im_costsvc.Service.query_cost svc)
            db q ))
      (Workload.queries workload)
  in
  (* Frontier filter: drop recommendations whose column set has workload
     evidence but falls below the support threshold — infrequent shapes
     the merge phase would not keep either. *)
  let tuned =
    match prune with
    | None -> tuned
    | Some fr ->
      let before = List.fold_left (fun n (_, r) -> n + List.length r) 0 tuned in
      let tuned =
        List.map
          (fun (q, recommended) ->
            (q, List.filter (Im_mine.Mine.keep_index fr) recommended))
          tuned
      in
      let after = List.fold_left (fun n (_, r) -> n + List.length r) 0 tuned in
      let st = Im_mine.Mine.frontier_stats fr in
      Printf.printf
        "frontier pruning: dropped %d of %d recommendations (support %g, %d \
         itemsets, %d supported tables)\n"
        (before - after) before st.Im_mine.Mine.fs_support
        st.Im_mine.Mine.fs_itemsets st.Im_mine.Mine.fs_supported_tables;
      tuned
  in
  List.iter
    (fun (q, recommended) ->
      Printf.printf "%s: %s\n" q.Im_sqlir.Query.q_id (Im_sqlir.Query.to_sql q);
      if recommended = [] then print_endline "  (no index recommended)"
      else
        List.iter
          (fun ix ->
            Printf.printf "  recommend %s (%d pages)\n" (Index.to_string ix)
              (Database.index_pages db ix))
          recommended)
    tuned;
  maybe_dump_metrics metrics

let tune_cmd =
  Cmd.v
    (Cmd.info "tune" ~doc:"Per-query index recommendations.")
    Term.(
      const run_tune $ db_arg $ sf_arg $ seed_arg $ workload_arg $ queries_arg
      $ workload_file_arg $ compress_arg $ prune_support_arg $ schema_arg
      $ data_arg $ domains_arg $ no_derive_arg $ metrics_arg)

(* ---- merge ---- *)

let run_merge db_name sf seed wl_kind n_queries n_initial constraint_ cost_model
    merge_pair strategy file updates compress prune_support schema_file data_dir
    domains no_derive metrics =
  apply_domains domains;
  let db = or_die (build_database ?schema_file ?data_dir db_name sf seed) in
  let workload = or_die (build_workload ?file db wl_kind n_queries seed) in
  let workload =
    match or_die (parse_updates updates) with
    | [] -> workload
    | profile -> Workload.with_updates workload profile
  in
  let cost_model = or_die (parse_cost_model cost_model) in
  let merge_pair = or_die (parse_merge_pair merge_pair) in
  let strategy = or_die (parse_strategy strategy) in
  let initial = build_initial db workload n_initial seed in
  Printf.printf "initial configuration (%d indexes, %d pages):\n"
    (List.length initial)
    (Database.config_storage_pages db initial);
  List.iter (fun ix -> Printf.printf "  %s\n" (Index.to_string ix)) initial;
  let outcome =
    Search.run ~merge_pair ~cost_model ~cost_constraint:constraint_
      ~derive:(not no_derive) ?compress ?prune_support db workload ~initial
      strategy
  in
  print_newline ();
  print_endline (Im_merging.Report.summary outcome);
  print_endline "merged configuration:";
  print_endline (Im_merging.Report.configuration_listing outcome);
  maybe_dump_metrics metrics

let merge_cmd =
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Run storage-minimal index merging over a workload (the paper's \
          main algorithm).")
    Term.(
      const run_merge $ db_arg $ sf_arg $ seed_arg $ workload_arg $ queries_arg
      $ initial_arg $ constraint_arg $ cost_model_arg $ merge_pair_arg
      $ strategy_arg $ workload_file_arg $ updates_arg $ compress_arg
      $ prune_support_arg $ schema_arg $ data_arg $ domains_arg $ no_derive_arg
      $ metrics_arg)

(* ---- explain ---- *)

let run_explain db_name sf seed wl_kind n_queries n_initial file schema_file
    data_dir metrics =
  let db = or_die (build_database ?schema_file ?data_dir db_name sf seed) in
  let workload = or_die (build_workload ?file db wl_kind n_queries seed) in
  let config = build_initial db workload n_initial seed in
  Printf.printf "configuration: %d indexes\n\n" (List.length config);
  List.iter
    (fun q ->
      print_string
        (Im_optimizer.Plan.explain (Im_optimizer.Optimizer.optimize db config q));
      print_newline ())
    (Workload.queries workload);
  maybe_dump_metrics metrics

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~doc:"Show optimizer plans for the workload.")
    Term.(
      const run_explain $ db_arg $ sf_arg $ seed_arg $ workload_arg
      $ queries_arg $ initial_arg $ workload_file_arg $ schema_arg $ data_arg
      $ metrics_arg)

(* ---- advise ---- *)

let budget_arg =
  let doc = "Storage budget for the recommendation, in pages." in
  Arg.(required & opt (some int) None & info [ "b"; "budget" ] ~docv:"PAGES" ~doc)

let run_advise db_name sf seed wl_kind n_queries file compress prune_support
    budget schema_file data_dir domains no_derive metrics =
  apply_domains domains;
  let db = or_die (build_database ?schema_file ?data_dir db_name sf seed) in
  let workload = or_die (build_workload ?file db wl_kind n_queries seed) in
  let outcome =
    Im_advisor.Advisor.advise ~derive:(not no_derive) ?compress ?prune_support
      db workload ~budget_pages:budget
  in
  print_endline (Im_advisor.Advisor.summary outcome);
  print_endline "recommended configuration:";
  List.iter
    (fun (it : Im_merging.Merge.item) ->
      Printf.printf "  %s (%d pages)\n"
        (Index.to_string it.Im_merging.Merge.it_index)
        (Database.index_pages db it.Im_merging.Merge.it_index))
    outcome.Im_advisor.Advisor.a_final;
  maybe_dump_metrics metrics

let advise_cmd =
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Recommend indexes for a workload under a storage budget \
          (selection with an integrated merging phase).")
    Term.(
      const run_advise $ db_arg $ sf_arg $ seed_arg $ workload_arg
      $ queries_arg $ workload_file_arg $ compress_arg $ prune_support_arg
      $ budget_arg $ schema_arg $ data_arg $ domains_arg $ no_derive_arg
      $ metrics_arg)

(* ---- serve ---- *)

let port_arg =
  let doc = "TCP port to listen on; 0 picks an ephemeral port." in
  Arg.(value & opt int 7399 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let serve_budget_arg =
  let doc =
    "Storage budget (pages) for every tuning epoch; 0 means half the \
     database's data pages."
  in
  Arg.(value & opt int 0 & info [ "b"; "budget" ] ~docv:"PAGES" ~doc)

let window_arg =
  let doc = "Sliding-window capacity in query clusters." in
  Arg.(value & opt int 48 & info [ "window" ] ~docv:"CLUSTERS" ~doc)

let decay_arg =
  let doc = "Per-statement frequency decay of the window (0 < d <= 1)." in
  Arg.(value & opt float 0.995 & info [ "decay" ] ~docv:"FACTOR" ~doc)

let check_every_arg =
  let doc = "Statements between drift checks." in
  Arg.(value & opt int 32 & info [ "check-every" ] ~docv:"N" ~doc)

let drift_threshold_arg =
  let doc = "Drift trigger: total-variation divergence of the query mix." in
  Arg.(value & opt float 0.35 & info [ "drift-threshold" ] ~docv:"TV" ~doc)

let cost_threshold_arg =
  let doc = "Drift trigger: relative cost regression of the window." in
  Arg.(value & opt float 0.30 & info [ "cost-threshold" ] ~docv:"FRACTION" ~doc)

let read_timeout_arg =
  let doc = "Idle-connection read timeout in seconds." in
  Arg.(value & opt float 30.0 & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)

let max_connections_arg =
  let doc = "Global cap on concurrent connections." in
  Arg.(value & opt int 64 & info [ "max-connections" ] ~docv:"N" ~doc)

let max_tenant_connections_arg =
  let doc =
    "Per-tenant cap on concurrent connections (0 = same as \
     --max-connections)."
  in
  Arg.(value & opt int 0 & info [ "max-tenant-connections" ] ~docv:"N" ~doc)

let max_output_bytes_arg =
  let doc =
    "Per-connection output-queue byte cap; a slow reader whose queue \
     would exceed it is closed (backpressure) instead of buffering \
     unboundedly."
  in
  Arg.(
    value & opt int 1_048_576 & info [ "max-output-bytes" ] ~docv:"BYTES" ~doc)

let event_backend_arg =
  let doc =
    "Socket readiness backend: auto (epoll where available, else poll), \
     epoll, poll, or select (the historical Unix.select loop; caps \
     watchable fds at FD_SETSIZE)."
  in
  Arg.(value & opt string "auto" & info [ "event-backend" ] ~docv:"BACKEND" ~doc)

let epoch_workers_arg =
  let doc =
    "Worker domains running tuning epochs off the dispatch thread so a \
     re-merge never stalls other tenants' statements; 0 runs epochs \
     inline (the historical behavior)."
  in
  Arg.(value & opt int 1 & info [ "epoch-workers" ] ~docv:"N" ~doc)

let tenant_arg =
  let doc =
    "Pre-create an extra tenant session at startup: NAME, NAME=DB, or \
     NAME[=DB]:WEIGHT (DB one of tpcd/synthetic1/synthetic2, default \
     NAME; WEIGHT a dispatch-fairness multiplier >= 1, default 1 — a \
     weight-3 tenant gets three times the per-round command budget). \
     Repeatable. The -d database becomes the default tenant, named \
     after it, at weight 1."
  in
  Arg.(
    value & opt_all string [] & info [ "tenant" ] ~docv:"NAME[=DB][:WEIGHT]" ~doc)

(* NAME[=DB][:WEIGHT]; the weight suffix is split off first (rightmost
   ':'), then the db spec. Database names never contain ':', so a colon
   with a non-numeric tail is a user error, not part of the spec. *)
let parse_tenant_spec spec =
  let split_db s =
    match String.index_opt s '=' with
    | None -> (s, s)
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match String.rindex_opt spec ':' with
  | None ->
    let name, dbspec = split_db spec in
    Ok (name, dbspec, 1)
  | Some i ->
    let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match int_of_string_opt tail with
     | Some w when w >= 1 ->
       let name, dbspec = split_db (String.sub spec 0 i) in
       Ok (name, dbspec, w)
     | Some w -> Error (Printf.sprintf "weight must be >= 1, got %d" w)
     | None -> Error (Printf.sprintf "bad weight %S (expected an integer)" tail))

let run_serve db_name sf seed schema_file data_dir port budget window decay
    check_every drift_threshold cost_threshold compress prune_support
    read_timeout max_connections max_tenant_connections max_output_bytes
    event_backend epoch_workers tenant_specs domains no_derive metrics =
  apply_domains domains;
  let event_backend =
    or_die (Im_evloop.Evloop.backend_of_string event_backend)
  in
  (* Every tenant session is built the same way: database by name, the
     serve options from the flags, epochs costing on the shared pool. *)
  let make_service db =
    let budget_pages =
      if budget > 0 then budget else max 1 (Database.data_pages db / 2)
    in
    let options =
      {
        (Im_online.Service.default_options ~budget_pages) with
        Im_online.Service.o_capacity = window;
        o_decay = decay;
        o_check_every = check_every;
        o_div_threshold = drift_threshold;
        o_cost_threshold = cost_threshold;
        o_compress = compress;
        o_prune_support = prune_support;
      }
    in
    Im_online.Service.create ~options
      ~pool:(Im_par.Pool.default ())
      ~derive:(not no_derive) db ~budget_pages
  in
  let factory dbspec =
    (* TENANT CREATE resolves only generated databases: csv needs
       --schema/--data paths that a remote client cannot name. *)
    match String.lowercase_ascii dbspec with
    | "csv" -> Error "tenant databases must be generated (tpcd/synthetic*)"
    | _ -> Result.map make_service (build_database dbspec sf seed)
  in
  let db = or_die (build_database ?schema_file ?data_dir db_name sf seed) in
  let budget_pages =
    if budget > 0 then budget else max 1 (Database.data_pages db / 2)
  in
  let service = make_service db in
  let tenants, weights =
    List.fold_left
      (fun (tenants, weights) spec ->
        let die msg = or_die (Error (Printf.sprintf "--tenant %s: %s" spec msg)) in
        let name, dbspec, weight =
          match parse_tenant_spec spec with Ok v -> v | Error msg -> die msg
        in
        match factory dbspec with
        | Ok svc ->
          ( (name, svc) :: tenants,
            if weight > 1 then (name, weight) :: weights else weights )
        | Error msg -> die msg)
      ([], []) (List.rev tenant_specs)
  in
  let server =
    try
      Im_online.Server.create ~port ~read_timeout ~max_connections
        ~max_tenant_connections ~max_output_bytes ~tenant:db_name ~tenants
        ~weights ~factory ~event_backend ~epoch_workers service
    with
    | Unix.Unix_error (e, _, _) ->
      or_die (Error (Printf.sprintf "cannot bind port %d: %s" port
                       (Unix.error_message e)))
    | Invalid_argument msg | Failure msg -> or_die (Error msg)
  in
  Printf.printf "index-merge serve: listening on 127.0.0.1:%d (budget %d \
                 pages, window %d clusters)\n%!"
    (Im_online.Server.port server) budget_pages window;
  Printf.printf "tenants: %s (max %d connections, %d per tenant, %d \
                 output bytes, backend %s, %d epoch workers)\n%!"
    (String.concat " " (Im_online.Server.tenants server))
    max_connections
    (if max_tenant_connections > 0 then max_tenant_connections
     else max_connections)
    max_output_bytes
    (Im_online.Server.event_backend server)
    (max 0 epoch_workers);
  let handle_stop _ = Im_online.Server.shutdown server in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle handle_stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handle_stop));
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  Im_online.Server.serve server;
  Printf.printf "served %d connections, %d commands\n"
    (Im_online.Server.connections_served server)
    (Im_online.Server.commands_served server);
  print_endline (Im_online.Service.render_stats service);
  maybe_dump_metrics metrics

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online index-tuning daemon: stream statements over TCP, \
          re-tune on workload drift, one session per tenant database.")
    Term.(
      const run_serve $ db_arg $ sf_arg $ seed_arg $ schema_arg $ data_arg
      $ port_arg $ serve_budget_arg $ window_arg $ decay_arg $ check_every_arg
      $ drift_threshold_arg $ cost_threshold_arg $ compress_arg
      $ prune_support_arg $ read_timeout_arg $ max_connections_arg
      $ max_tenant_connections_arg
      $ max_output_bytes_arg $ event_backend_arg $ epoch_workers_arg
      $ tenant_arg $ domains_arg $ no_derive_arg $ metrics_arg)

(* ---- generate ---- *)

let run_generate db_name sf seed wl_kind n_queries out =
  let db = or_die (build_database db_name sf seed) in
  let workload = or_die (build_workload db wl_kind n_queries seed) in
  Im_workload.Workload_file.save workload out;
  Printf.printf "wrote %d statements to %s\n" (Workload.size workload) out

let out_arg =
  let doc = "Output file for the generated workload." in
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let generate_cmd =
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a workload and write it as a SQL script file.")
    Term.(
      const run_generate $ db_arg $ sf_arg $ seed_arg $ workload_arg
      $ queries_arg $ out_arg)

(* ---- export ---- *)

let run_export db_name sf seed out_schema out_dir =
  let db = or_die (build_database db_name sf seed) in
  if not (Sys.file_exists out_dir && Sys.is_directory out_dir) then
    Sys.mkdir out_dir 0o755;
  Im_io.Loader.dump db ~schema_file:out_schema ~data_dir:out_dir;
  Printf.printf "wrote %s and CSVs under %s\n" out_schema out_dir

let out_schema_arg =
  let doc = "Output DDL schema file." in
  Arg.(
    required & opt (some string) None & info [ "out-schema" ] ~docv:"FILE" ~doc)

let out_dir_arg =
  let doc = "Output directory for the <table>.csv files (created if absent)." in
  Arg.(required & opt (some string) None & info [ "out-data" ] ~docv:"DIR" ~doc)

let export_cmd =
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a generated database as DDL + CSV files (the -d csv \
             input format).")
    Term.(
      const run_export $ db_arg $ sf_arg $ seed_arg $ out_schema_arg
      $ out_dir_arg)

let () =
  let doc = "index merging for workload-driven physical database design" in
  let info = Cmd.info "index-merge" ~version ~doc in
  let group =
    Cmd.group info
      [
        info_cmd; tune_cmd; merge_cmd; explain_cmd; generate_cmd; advise_cmd;
        export_cmd; serve_cmd;
      ]
  in
  (* File problems anywhere (unreadable --schema/--data/workload files,
     unwritable outputs) must be a one-line error and a non-zero exit,
     never a cmdliner "internal error" backtrace. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Sys_error msg ->
    prerr_endline ("index-merge: " ^ msg);
    exit 2
  | exception Unix.Unix_error (e, fn, arg) ->
    prerr_endline
      (Printf.sprintf "index-merge: %s: %s%s" fn (Unix.error_message e)
         (if arg = "" then "" else " (" ^ arg ^ ")"));
    exit 2
